#include "dtx/site.hpp"

#include <algorithm>
#include <cassert>

#include "dtx/recovery.hpp"
#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using net::Message;
using net::Payload;
using txn::Transaction;
using txn::TxnState;

Site::Site(SiteOptions options, net::Network& network,
           const Catalog& catalog, storage::StorageBackend& store)
    : ctx_(options, network, catalog, store),
      coordinator_(ctx_),
      participant_(ctx_) {}

Site::~Site() { stop(); }

util::Status Site::start() {
  util::Status status = ctx_.data().load_all();
  if (!status) return status;
  // Presumed-abort commit log: repopulate the outcome cache with the
  // durable commit decisions (no-op on a fresh store).
  ctx_.load_commit_log();
  ctx_.running.store(true);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  const std::size_t coordinators =
      std::max<std::size_t>(1, ctx_.options.coordinator_workers);
  coordinator_threads_.reserve(coordinators);
  for (std::size_t i = 0; i < coordinators; ++i) {
    coordinator_threads_.emplace_back([this] { coordinator_.run(); });
  }
  const std::size_t participants =
      std::max<std::size_t>(1, ctx_.options.participant_workers);
  participant_threads_.reserve(participants);
  for (std::size_t i = 0; i < participants; ++i) {
    participant_threads_.emplace_back([this] { participant_.run(); });
  }
  return util::Status::ok();
}

void Site::halt() {
  ctx_.mailbox.interrupt();
  ctx_.coord_cv.notify_all();
  ctx_.part_cv.notify_all();
  ctx_.resp_cv.notify_all();
  ctx_.ack_cv.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : coordinator_threads_) {
    if (worker.joinable()) worker.join();
  }
  coordinator_threads_.clear();
  for (std::thread& worker : participant_threads_) {
    if (worker.joinable()) worker.join();
  }
  participant_threads_.clear();
  // Unblock any clients still waiting on unfinished transactions. Their
  // outcome is indeterminate: a transaction may have passed its commit
  // decision moments before the site went down, so callers must treat
  // kSiteFailure as "maybe committed", not "rolled back".
  std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
  for (auto& [id, txn] : ctx_.transactions) {
    if (!txn->completed()) {
      txn::TxnResult result;
      result.id = id;
      result.state = TxnState::kAborted;
      result.reason = txn::AbortReason::kSiteFailure;
      result.detail = "site shut down";
      txn->complete(std::move(result));
    }
  }
}

void Site::stop() {
  if (!ctx_.running.exchange(false)) return;
  halt();
}

void Site::wipe_volatile_state() {
  // Scheduler queues, response/ack collection, participant tracking and
  // the outcome cache — everything a process crash loses (the durable
  // commit log is reloaded by start()). Also run before a restart after a
  // graceful stop(): the queues may still hold transactions that halt()
  // completed, and new workers must never re-execute those.
  {
    std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
    ctx_.ready.clear();
    ctx_.transactions.clear();
    ctx_.waiting.clear();
    ctx_.pending_wakes.clear();
    ctx_.victim_aborts.clear();
    ctx_.executing.clear();
    ctx_.deferred_victims.clear();
    ctx_.recent_outcomes.clear();
    ctx_.outcome_fifo.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ctx_.part_mutex);
    ctx_.participant_queue.clear();
    ctx_.participant_active.clear();
    ctx_.remote_txns.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ctx_.resp_mutex);
    ctx_.responses.clear();
    ctx_.snapshot_replies.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ctx_.ack_mutex);
    ctx_.acks.clear();
  }
}

void Site::crash() {
  // Drop off the network first: anything sent from now on is lost, as are
  // the messages still queued in the mailbox.
  ctx_.network.set_site_down(ctx_.options.id, true);
  if (ctx_.running.exchange(false)) halt();
  ctx_.mailbox.reset();
  ctx_.mailbox.interrupt();  // stay un-poppable until restart()
  // Committed state lives only in the storage backend.
  wipe_volatile_state();
  ctx_.rebuild_engine();
}

util::Status Site::restart() {
  if (ctx_.running.load()) {
    return util::Status(util::Code::kInternal, "site is running");
  }
  // Rebuild from the storage backend: committed documents only (a graceful
  // stop() restart takes the same path — the engine is always rebuilt and
  // stale queue entries are dropped, exactly as after a crash).
  wipe_volatile_state();
  ctx_.rebuild_engine();
  ctx_.mailbox.reset();
  ctx_.network.set_site_down(ctx_.options.id, false);
  util::Status status = start();
  if (status) {
    std::lock_guard<std::mutex> lock(ctx_.stats_mutex);
    ++ctx_.stats.restarts;
  }
  return status;
}

TxnId Site::next_txn_id() {
  std::uint64_t begin = steady_now_micros();
  if (begin <= ctx_.last_begin_micros) begin = ctx_.last_begin_micros + 1;
  ctx_.last_begin_micros = begin;
  return txn::make_txn_id(begin, ctx_.options.id);
}

std::shared_ptr<Transaction> Site::submit(std::vector<txn::Operation> ops) {
  std::shared_ptr<Transaction> txn;
  {
    std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
    txn = std::make_shared<Transaction>(next_txn_id(), std::move(ops));
    if (!ctx_.running.load()) {
      // The site is down (stopped or crashed): refuse instead of parking
      // the transaction on a queue no worker will ever drain.
      txn::TxnResult result;
      result.id = txn->id();
      result.state = TxnState::kAborted;
      result.reason = txn::AbortReason::kSiteFailure;
      result.detail = "site is down";
      txn->complete(std::move(result));
      return txn;
    }
    ctx_.transactions[txn->id()] = txn;
    ctx_.ready.push_back(txn);
  }
  ctx_.coord_cv.notify_all();
  return txn;
}

SiteStats Site::stats() {
  std::lock_guard<std::mutex> lock(ctx_.stats_mutex);
  SiteStats out = ctx_.stats;
  out.lock_manager = ctx_.locks().stats();
  out.plan_cache = ctx_.plans().stats();
  out.snapshots = ctx_.snaps().stats();
  out.distributed_cycles_found = ctx_.detector.cycles_found();
  return out;
}

// ---------------------------------------------------------------------------
// Dispatcher: mailbox routing, deadlock-detector cadence and the
// presumed-abort orphan sweep.
// ---------------------------------------------------------------------------

void Site::dispatcher_loop() {
  while (ctx_.running.load()) {
    std::optional<Message> message =
        ctx_.mailbox.pop(ctx_.options.poll_interval);
    const auto now = Clock::now();
    if (message.has_value()) {
      Message& m = *message;
      std::visit(
          [&](auto&& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, net::ExecuteOperation> ||
                          std::is_same_v<T, net::SnapshotReadRequest> ||
                          std::is_same_v<T, net::UndoOperation> ||
                          std::is_same_v<T, net::CommitRequest> ||
                          std::is_same_v<T, net::AbortRequest> ||
                          std::is_same_v<T, net::FailNotice> ||
                          std::is_same_v<T, net::TxnStatusReply>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.part_mutex);
                ctx_.participant_queue.push_back(std::move(m));
              }
              ctx_.part_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::OperationResult>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.resp_mutex);
                const auto it =
                    ctx_.responses.find({payload.txn, payload.op_index});
                if (it != ctx_.responses.end() &&
                    it->second.attempt == payload.attempt) {
                  it->second.replies[m.from] = std::move(payload);
                }
              }
              ctx_.resp_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::SnapshotReadReply>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.resp_mutex);
                const auto it = ctx_.snapshot_replies.find(payload.txn);
                if (it != ctx_.snapshot_replies.end()) {
                  it->second[m.from] = std::move(payload);
                }
              }
              ctx_.resp_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::CommitAck> ||
                                 std::is_same_v<T, net::AbortAck>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.ack_mutex);
                const auto it = ctx_.acks.find(payload.txn);
                if (it != ctx_.acks.end()) {
                  it->second.acks[m.from] = payload.ok;
                }
              }
              ctx_.ack_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::ClientSubmit>) {
              handle_client_submit(m.from, std::move(payload));
            } else if constexpr (std::is_same_v<T, net::RecoveryPullRequest>) {
              answer_recovery_pull(payload);
            } else if constexpr (std::is_same_v<T, net::TxnStatusRequest>) {
              answer_status_request(payload);
            } else if constexpr (std::is_same_v<T, net::WfgRequest>) {
              ctx_.send(payload.requester,
                        net::WfgReply{payload.probe, ctx_.locks().wfg_edges()});
            } else if constexpr (std::is_same_v<T, net::WfgReply>) {
              const auto victim = ctx_.detector.add_reply(payload.probe,
                                                          m.from,
                                                          payload.edges);
              if (victim.has_value() && *victim != 0) act_on_victim(*victim);
            } else if constexpr (std::is_same_v<T, net::VictimAbort>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
                ctx_.victim_aborts.push_back(payload.txn);
              }
              ctx_.coord_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::WakeTxn>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
                const auto it = ctx_.transactions.find(payload.txn);
                if (it != ctx_.transactions.end() &&
                    ctx_.waiting.count(payload.txn) != 0) {
                  ctx_.waiting.erase(payload.txn);
                  it->second->set_state(TxnState::kActive);
                  ctx_.ready.push_back(it->second);
                } else {
                  // Wake raced the conflict reply: remember it so the
                  // transaction re-queues instead of parking.
                  ctx_.pending_wakes.insert(payload.txn);
                }
              }
              ctx_.coord_cv.notify_all();
            }
          },
          m.payload);
    }
    run_deadlock_detection(now);
    sweep_orphans(now);
  }
}

void Site::handle_client_submit(SiteId client, net::ClientSubmit submit) {
  const std::uint64_t seq = submit.seq;
  if (submit.ops.empty()) {
    net::ClientReply reply;
    reply.seq = seq;
    reply.accepted = false;
    reply.detail = "transaction needs at least one operation";
    ctx_.send(client, std::move(reply));
    return;
  }
  std::shared_ptr<Transaction> txn = this->submit(std::move(submit.ops));
  // The hook fires on whichever thread completes the transaction (a
  // coordinator worker, or halt() on shutdown) — ctx_ outlives every
  // transaction, so capturing it is safe.
  SiteContext* ctx = &ctx_;
  txn->set_on_complete([ctx, client, seq](const txn::TxnResult& result) {
    net::ClientReply reply;
    reply.seq = seq;
    reply.accepted = true;
    reply.txn = result.id;
    reply.state = static_cast<std::uint8_t>(result.state);
    reply.reason = static_cast<std::uint8_t>(result.reason);
    reply.deadlock_victim = result.deadlock_victim;
    reply.wait_episodes = result.wait_episodes;
    reply.response_ms = result.response_ms;
    reply.detail = result.detail;
    reply.rows = result.rows;
    ctx->send(client, std::move(reply));
  });
}

void Site::answer_recovery_pull(const net::RecoveryPullRequest& request) {
  net::RecoveryPullReply reply;
  reply.doc = request.doc;
  const std::vector<SiteId> hosts = ctx_.catalog.sites_of(request.doc);
  const bool hosted = std::find(hosts.begin(), hosts.end(),
                                ctx_.options.id) != hosts.end();
  if (hosted) {
    auto durable = recovery::read_stable(ctx_.store, request.doc);
    if (durable) {
      reply.ok = true;
      reply.version = durable.value().version;
      reply.snapshot = std::move(durable.value().snapshot);
      reply.log = recovery::flatten_log(durable.value());
    }
  }
  ctx_.send(request.requester, std::move(reply));
}

void Site::answer_status_request(const net::TxnStatusRequest& request) {
  net::TxnOutcome outcome = net::TxnOutcome::kUnknown;
  {
    std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
    if (ctx_.transactions.count(request.txn) != 0) {
      outcome = net::TxnOutcome::kActive;
    } else {
      const auto it = ctx_.recent_outcomes.find(request.txn);
      if (it != ctx_.recent_outcomes.end()) {
        outcome = it->second ? net::TxnOutcome::kCommitted
                             : net::TxnOutcome::kAborted;
      }
      // else: no record — never coordinated here, or the record died with
      // a crash. kUnknown; the participant presumes abort.
    }
  }
  ctx_.send(request.requester, net::TxnStatusReply{request.txn, outcome});
}

void Site::sweep_orphans(Clock::time_point now) {
  if (ctx_.options.orphan_txn_timeout.count() == 0) return;
  std::vector<std::pair<TxnId, SiteId>> probes;
  std::size_t rollbacks = 0;
  {
    std::lock_guard<std::mutex> lock(ctx_.part_mutex);
    for (auto& [txn, record] : ctx_.remote_txns) {
      if (ctx_.participant_active.count(txn) != 0) continue;  // in service
      if (now - record.last_seen < ctx_.options.orphan_txn_timeout) continue;
      if (record.unanswered_probes >= ctx_.options.orphan_query_limit) {
        // Presumed abort: enqueue a local FailNotice so the rollback runs
        // on a participant worker under the per-transaction serialization
        // rule (never concurrently with a late Execute / Commit of the
        // same transaction).
        record.last_seen = now;  // don't re-enqueue while this one is queued
        ctx_.participant_queue.push_back(Message{
            ctx_.options.id, ctx_.options.id, net::FailNotice{txn}});
        ++rollbacks;
      } else {
        ++record.unanswered_probes;
        record.last_seen = now;  // next probe one orphan timeout from now
        probes.push_back({txn, record.coordinator});
      }
    }
  }
  if (rollbacks != 0) {
    {
      std::lock_guard<std::mutex> lock(ctx_.stats_mutex);
      ctx_.stats.orphans_aborted += rollbacks;
    }
    ctx_.part_cv.notify_all();
  }
  for (const auto& [txn, coordinator] : probes) {
    ctx_.send(coordinator, net::TxnStatusRequest{txn, ctx_.options.id});
  }
}

void Site::run_deadlock_detection(Clock::time_point now) {
  if (const auto victim = ctx_.detector.resolve_if_expired(now);
      victim.has_value() && *victim != 0) {
    act_on_victim(*victim);
  }
  if (!ctx_.detector.should_start(now)) return;
  std::vector<SiteId> others;
  for (SiteId site : ctx_.network.sites()) {
    if (site != ctx_.options.id) others.push_back(site);
  }
  const std::uint64_t probe =
      ctx_.detector.begin_probe(ctx_.locks().wfg_edges(), others, now);
  if (others.empty()) {
    // Single-site system: the probe resolves on the local graph alone.
    const auto victim = ctx_.detector.add_reply(probe, ctx_.options.id, {});
    if (victim.has_value() && *victim != 0) act_on_victim(*victim);
    return;
  }
  for (SiteId site : others) {
    ctx_.send(site, net::WfgRequest{probe, ctx_.options.id});
  }
}

void Site::act_on_victim(TxnId victim) {
  // Alg. 4 l. 7-8: the newest transaction on the cycle is rolled back by
  // its coordinator.
  const SiteId coordinator = txn::txn_coordinator(victim);
  if (coordinator == ctx_.options.id) {
    {
      std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
      ctx_.victim_aborts.push_back(victim);
    }
    ctx_.coord_cv.notify_all();
  } else {
    ctx_.send(coordinator, net::VictimAbort{victim});
  }
}

}  // namespace dtx::core
