#include "dtx/site.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using net::Message;
using net::Payload;
using txn::Transaction;
using txn::TxnState;

namespace {

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Site::Site(SiteOptions options, net::SimNetwork& network,
           const Catalog& catalog, storage::StorageBackend& store)
    : options_(options),
      network_(network),
      mailbox_(network.register_site(options.id)),
      catalog_(catalog),
      data_(store),
      locks_(options.protocol, data_),
      detector_(options.detect_period, options.detect_reply_timeout) {}

Site::~Site() { stop(); }

util::Status Site::start() {
  util::Status status = data_.load_all();
  if (!status) return status;
  running_.store(true);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  coordinator_ = std::thread([this] { coordinator_loop(); });
  participant_ = std::thread([this] { participant_loop(); });
  return util::Status::ok();
}

void Site::stop() {
  if (!running_.exchange(false)) return;
  mailbox_.interrupt();
  coord_cv_.notify_all();
  part_cv_.notify_all();
  resp_cv_.notify_all();
  ack_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (coordinator_.joinable()) coordinator_.join();
  if (participant_.joinable()) participant_.join();
  // Unblock any clients still waiting on unfinished transactions.
  std::lock_guard<std::mutex> lock(coord_mutex_);
  for (auto& [id, txn] : transactions_) {
    if (!txn->completed()) {
      txn::TxnResult result;
      result.id = id;
      result.state = TxnState::kAborted;
      result.error = "site shut down";
      txn->complete(std::move(result));
    }
  }
}

TxnId Site::next_txn_id() {
  std::uint64_t begin = now_micros();
  if (begin <= last_begin_micros_) begin = last_begin_micros_ + 1;
  last_begin_micros_ = begin;
  return txn::make_txn_id(begin, options_.id);
}

std::shared_ptr<Transaction> Site::submit(std::vector<txn::Operation> ops) {
  std::shared_ptr<Transaction> txn;
  {
    std::lock_guard<std::mutex> lock(coord_mutex_);
    txn = std::make_shared<Transaction>(next_txn_id(), std::move(ops));
    transactions_[txn->id()] = txn;
    ready_.push_back(txn);
  }
  coord_cv_.notify_all();
  return txn;
}

SiteStats Site::stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  SiteStats out = stats_;
  out.lock_manager = locks_.stats();
  out.distributed_cycles_found = detector_.cycles_found();
  return out;
}

void Site::send(SiteId to, Payload payload) {
  network_.send(Message{options_.id, to, std::move(payload)});
}

void Site::send_wakes(const std::vector<WakeNotice>& wakes) {
  for (const WakeNotice& wake : wakes) {
    send(wake.coordinator, net::WakeTxn{wake.waiter});
  }
}

// ---------------------------------------------------------------------------
// Dispatcher: mailbox routing + deadlock-detector cadence.
// ---------------------------------------------------------------------------

void Site::dispatcher_loop() {
  while (running_.load()) {
    std::optional<Message> message = mailbox_.pop(options_.poll_interval);
    const auto now = Clock::now();
    if (message.has_value()) {
      Message& m = *message;
      std::visit(
          [&](auto&& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, net::ExecuteOperation> ||
                          std::is_same_v<T, net::UndoOperation> ||
                          std::is_same_v<T, net::CommitRequest> ||
                          std::is_same_v<T, net::AbortRequest> ||
                          std::is_same_v<T, net::FailNotice>) {
              {
                std::lock_guard<std::mutex> lock(part_mutex_);
                participant_queue_.push_back(std::move(m));
              }
              part_cv_.notify_all();
            } else if constexpr (std::is_same_v<T, net::OperationResult>) {
              {
                std::lock_guard<std::mutex> lock(resp_mutex_);
                const auto it =
                    responses_.find({payload.txn, payload.op_index});
                if (it != responses_.end() &&
                    it->second.attempt == payload.attempt) {
                  it->second.replies[m.from] = std::move(payload);
                }
              }
              resp_cv_.notify_all();
            } else if constexpr (std::is_same_v<T, net::CommitAck> ||
                                 std::is_same_v<T, net::AbortAck>) {
              {
                std::lock_guard<std::mutex> lock(ack_mutex_);
                const auto it = acks_.find(payload.txn);
                if (it != acks_.end()) {
                  it->second.acks[m.from] = payload.ok;
                }
              }
              ack_cv_.notify_all();
            } else if constexpr (std::is_same_v<T, net::WfgRequest>) {
              send(payload.requester,
                   net::WfgReply{payload.probe, locks_.wfg_edges()});
            } else if constexpr (std::is_same_v<T, net::WfgReply>) {
              const auto victim =
                  detector_.add_reply(payload.probe, m.from, payload.edges);
              if (victim.has_value() && *victim != 0) act_on_victim(*victim);
            } else if constexpr (std::is_same_v<T, net::VictimAbort>) {
              {
                std::lock_guard<std::mutex> lock(coord_mutex_);
                victim_aborts_.push_back(payload.txn);
              }
              coord_cv_.notify_all();
            } else if constexpr (std::is_same_v<T, net::WakeTxn>) {
              {
                std::lock_guard<std::mutex> lock(coord_mutex_);
                const auto it = transactions_.find(payload.txn);
                if (it != transactions_.end() &&
                    waiting_.count(payload.txn) != 0) {
                  waiting_.erase(payload.txn);
                  it->second->set_state(TxnState::kActive);
                  ready_.push_back(it->second);
                } else {
                  // Wake raced the conflict reply: remember it so the
                  // transaction re-queues instead of parking.
                  pending_wakes_.insert(payload.txn);
                }
              }
              coord_cv_.notify_all();
            }
          },
          m.payload);
    }
    run_deadlock_detection(now);
  }
}

void Site::run_deadlock_detection(Clock::time_point now) {
  if (const auto victim = detector_.resolve_if_expired(now);
      victim.has_value() && *victim != 0) {
    act_on_victim(*victim);
  }
  if (!detector_.should_start(now)) return;
  std::vector<SiteId> others;
  for (SiteId site : network_.sites()) {
    if (site != options_.id) others.push_back(site);
  }
  const std::uint64_t probe =
      detector_.begin_probe(locks_.wfg_edges(), others, now);
  if (others.empty()) {
    // Single-site system: the probe resolves on the local graph alone.
    const auto victim = detector_.add_reply(probe, options_.id, {});
    if (victim.has_value() && *victim != 0) act_on_victim(*victim);
    return;
  }
  for (SiteId site : others) {
    send(site, net::WfgRequest{probe, options_.id});
  }
}

void Site::act_on_victim(TxnId victim) {
  // Alg. 4 l. 7-8: the newest transaction on the cycle is rolled back by
  // its coordinator.
  const SiteId coordinator = txn::txn_coordinator(victim);
  if (coordinator == options_.id) {
    {
      std::lock_guard<std::mutex> lock(coord_mutex_);
      victim_aborts_.push_back(victim);
    }
    coord_cv_.notify_all();
  } else {
    send(coordinator, net::VictimAbort{victim});
  }
}

// ---------------------------------------------------------------------------
// Coordinator: Algorithm 1.
// ---------------------------------------------------------------------------

void Site::coordinator_loop() {
  while (running_.load()) {
    std::shared_ptr<Transaction> next;
    {
      std::unique_lock<std::mutex> lock(coord_mutex_);
      coord_cv_.wait_for(lock, options_.poll_interval, [&] {
        return !running_.load() || !ready_.empty() || !victim_aborts_.empty();
      });
      if (!running_.load()) return;

      // Victim aborts first (Alg. 4 hands them to the scheduler).
      while (!victim_aborts_.empty()) {
        const TxnId victim = victim_aborts_.front();
        victim_aborts_.pop_front();
        const auto it = transactions_.find(victim);
        if (it == transactions_.end() || it->second->completed()) continue;
        std::shared_ptr<Transaction> txn = it->second;
        waiting_.erase(victim);
        ready_.erase(std::remove(ready_.begin(), ready_.end(), txn),
                     ready_.end());
        lock.unlock();
        abort_transaction(txn, /*deadlock_victim=*/true);
        lock.lock();
      }

      // Lost-wakeup backstop: retry waiting transactions periodically.
      const auto now = Clock::now();
      for (auto it = waiting_.begin(); it != waiting_.end();) {
        const auto txn_it = transactions_.find(it->first);
        if (txn_it == transactions_.end()) {
          it = waiting_.erase(it);
          continue;
        }
        if (now - it->second >= options_.retry_interval) {
          txn_it->second->set_state(TxnState::kActive);
          ready_.push_back(txn_it->second);
          it = waiting_.erase(it);
        } else {
          ++it;
        }
      }

      if (ready_.empty()) continue;
      next = ready_.front();
      ready_.pop_front();
    }
    if (next->completed() || next->state() != TxnState::kActive) continue;
    execute_one_operation(next);
  }
}

void Site::execute_one_operation(const std::shared_ptr<Transaction>& txn) {
  const std::size_t op_index = txn->next_operation();
  if (op_index == txn->op_count()) {
    // Alg. 1 l. 24-26: no operation left -> commit.
    commit_transaction(txn);
    return;
  }
  const txn::Operation& op = txn->ops()[op_index];
  const std::vector<SiteId> sites = catalog_.sites_of(op.doc);
  if (sites.empty()) {
    txn->state_of(op_index).failed = true;
    txn->state_of(op_index).error =
        "document '" + op.doc + "' is not in the catalog";
    abort_transaction(txn, false);
    return;
  }
  if (sites.size() == 1 && sites.front() == options_.id) {
    execute_local(txn, op_index);
  } else {
    execute_remote(txn, op_index, sites);
  }
}

void Site::execute_local(const std::shared_ptr<Transaction>& txn,
                         std::size_t op_index) {
  // Alg. 1 l. 6-10.
  const txn::Operation& op = txn->ops()[op_index];
  txn::OperationState& state = txn->state_of(op_index);
  ++state.attempts;
  state.reset_attempt();
  OpOutcome outcome = locks_.process_operation(
      txn->id(), static_cast<std::uint32_t>(op_index), op, options_.id);
  switch (outcome.kind) {
    case OpOutcome::Kind::kExecuted:
      state.executed = true;
      state.rows = std::move(outcome.rows);
      txn->add_sites({options_.id});
      requeue(txn);
      return;
    case OpOutcome::Kind::kConflict:
      enter_wait(txn);
      return;
    case OpOutcome::Kind::kDeadlock:
      state.deadlock = true;
      abort_transaction(txn, /*deadlock_victim=*/true);
      return;
    case OpOutcome::Kind::kFailed:
      state.failed = true;
      state.error = std::move(outcome.error);
      abort_transaction(txn, false);
      return;
  }
}

void Site::execute_remote(const std::shared_ptr<Transaction>& txn,
                          std::size_t op_index,
                          const std::vector<SiteId>& sites) {
  // Alg. 1 l. 12-22.
  const txn::Operation& op = txn->ops()[op_index];
  txn::OperationState& state = txn->state_of(op_index);
  ++state.attempts;
  state.reset_attempt();
  const auto attempt = state.attempts;

  const std::set<SiteId> expected(sites.begin(), sites.end());
  {
    std::lock_guard<std::mutex> lock(resp_mutex_);
    ResponseSlot& slot =
        responses_[{txn->id(), static_cast<std::uint32_t>(op_index)}];
    slot.attempt = attempt;
    slot.replies.clear();
  }
  for (SiteId site : sites) {
    send(site, net::ExecuteOperation{
                   txn->id(), static_cast<std::uint32_t>(op_index), attempt,
                   options_.id, op.doc, op.to_string()});
  }
  const std::map<SiteId, net::OperationResult> replies = await_responses(
      txn->id(), static_cast<std::uint32_t>(op_index), attempt, expected);
  {
    std::lock_guard<std::mutex> lock(resp_mutex_);
    responses_.erase({txn->id(), static_cast<std::uint32_t>(op_index)});
  }
  if (!running_.load()) return;

  bool any_conflict = false;
  bool any_failed = replies.size() != expected.size();  // timeout == failure
  bool any_deadlock = false;
  std::vector<SiteId> executed_at;
  for (const auto& [site, reply] : replies) {
    if (reply.executed) executed_at.push_back(site);
    any_conflict |= reply.lock_conflict;
    any_failed |= reply.failed;
    any_deadlock |= reply.deadlock;
  }

  if (any_failed || any_deadlock) {
    // Alg. 1 l. 19-21. Sites that executed the operation are cleaned up by
    // the abort broadcast (it reaches every site of the transaction).
    txn->add_sites(executed_at);
    state.failed = any_failed;
    state.deadlock = any_deadlock;
    if (replies.size() != expected.size()) {
      state.error = "participant response timeout";
    } else if (any_failed) {
      state.error = "operation failed at a participant site";
    }
    abort_transaction(txn, any_deadlock);
    return;
  }
  if (any_conflict) {
    // Alg. 1 l. 15-17: undo the operation wherever it executed; wait.
    for (SiteId site : executed_at) {
      send(site, net::UndoOperation{txn->id(),
                                    static_cast<std::uint32_t>(op_index)});
    }
    enter_wait(txn);
    return;
  }

  // Executed everywhere: adopt the rows of the lowest-id replica.
  state.executed = true;
  txn->add_sites(std::vector<SiteId>(expected.begin(), expected.end()));
  for (const auto& [site, reply] : replies) {
    if (reply.executed) {
      state.rows = reply.rows;
      break;  // map iteration is ordered by site id
    }
  }
  requeue(txn);
}

void Site::enter_wait(const std::shared_ptr<Transaction>& txn) {
  txn->note_wait_episode();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.wait_episodes;
  }
  std::lock_guard<std::mutex> lock(coord_mutex_);
  if (pending_wakes_.erase(txn->id()) != 0) {
    // A wake overtook us; retry immediately.
    txn->set_state(TxnState::kActive);
    ready_.push_back(txn);
    coord_cv_.notify_all();
    return;
  }
  txn->set_state(TxnState::kWaiting);
  waiting_[txn->id()] = Clock::now();
}

void Site::requeue(const std::shared_ptr<Transaction>& txn) {
  {
    std::lock_guard<std::mutex> lock(coord_mutex_);
    ready_.push_back(txn);
  }
  coord_cv_.notify_all();
}

std::map<SiteId, net::OperationResult> Site::await_responses(
    TxnId txn, std::uint32_t op_index, std::uint32_t attempt,
    const std::set<SiteId>& expected) {
  const auto deadline = Clock::now() + options_.response_timeout;
  std::unique_lock<std::mutex> lock(resp_mutex_);
  const auto key = std::make_pair(txn, op_index);
  for (;;) {
    const auto it = responses_.find(key);
    if (it == responses_.end() || it->second.attempt != attempt) return {};
    if (it->second.replies.size() >= expected.size()) {
      return it->second.replies;
    }
    if (!running_.load() || Clock::now() >= deadline) {
      return it->second.replies;  // partial (timeout / shutdown)
    }
    resp_cv_.wait_until(lock, deadline);
  }
}

std::map<SiteId, bool> Site::await_acks(TxnId txn,
                                        const std::set<SiteId>& expected,
                                        bool commit) {
  (void)commit;
  const auto deadline = Clock::now() + options_.response_timeout;
  std::unique_lock<std::mutex> lock(ack_mutex_);
  for (;;) {
    const auto it = acks_.find(txn);
    if (it == acks_.end()) return {};
    if (it->second.acks.size() >= expected.size()) return it->second.acks;
    if (!running_.load() || Clock::now() >= deadline) return it->second.acks;
    ack_cv_.wait_until(lock, deadline);
  }
}

void Site::commit_transaction(const std::shared_ptr<Transaction>& txn) {
  // Algorithm 5.
  std::set<SiteId> remote = txn->sites();
  remote.erase(options_.id);
  if (!remote.empty()) {
    {
      std::lock_guard<std::mutex> lock(ack_mutex_);
      AckSlot& slot = acks_[txn->id()];
      slot.commit = true;
      slot.acks.clear();
    }
    for (SiteId site : remote) {
      send(site, net::CommitRequest{txn->id()});
    }
    const std::map<SiteId, bool> acks =
        await_acks(txn->id(), remote, /*commit=*/true);
    {
      std::lock_guard<std::mutex> lock(ack_mutex_);
      acks_.erase(txn->id());
    }
    bool all_ok = acks.size() == remote.size();
    for (const auto& [site, ok] : acks) all_ok &= ok;
    if (!all_ok) {
      // Alg. 5 l. 5-7: a site did not serve the commit -> abort.
      abort_transaction(txn, false);
      return;
    }
  }
  // Alg. 5 l. 10-11: persist and release locally.
  std::vector<WakeNotice> wakes;
  util::Status status = locks_.commit(txn->id(), wakes);
  send_wakes(wakes);
  if (!status) {
    abort_transaction(txn, false);
    return;
  }
  finish_transaction(txn, TxnState::kCommitted);
}

void Site::abort_transaction(const std::shared_ptr<Transaction>& txn,
                             bool deadlock_victim) {
  // Algorithm 6.
  if (deadlock_victim) txn->mark_deadlock_victim();
  std::set<SiteId> remote = txn->sites();
  remote.erase(options_.id);
  if (!remote.empty()) {
    {
      std::lock_guard<std::mutex> lock(ack_mutex_);
      AckSlot& slot = acks_[txn->id()];
      slot.commit = false;
      slot.acks.clear();
    }
    for (SiteId site : remote) {
      send(site, net::AbortRequest{txn->id()});
    }
    const std::map<SiteId, bool> acks =
        await_acks(txn->id(), remote, /*commit=*/false);
    {
      std::lock_guard<std::mutex> lock(ack_mutex_);
      acks_.erase(txn->id());
    }
    bool all_ok = acks.size() == remote.size();
    for (const auto& [site, ok] : acks) all_ok &= ok;
    if (!all_ok && running_.load()) {
      // Alg. 6 l. 5-10: the cancellation itself failed somewhere -> the
      // transaction *fails*; every site is told so.
      for (SiteId site : remote) {
        send(site, net::FailNotice{txn->id()});
      }
      fail_transaction(txn);
      return;
    }
  }
  // Alg. 6 l. 13-14: undo and release locally.
  std::vector<WakeNotice> wakes;
  locks_.abort(txn->id(), wakes);
  send_wakes(wakes);
  finish_transaction(txn, TxnState::kAborted);
}

void Site::fail_transaction(const std::shared_ptr<Transaction>& txn) {
  // Local best-effort cleanup so this site's locks do not leak, then report
  // failure to the application (paper §2.2: "In case of failure, DTX alerts
  // the application stating that the transaction has failed").
  std::vector<WakeNotice> wakes;
  locks_.abort(txn->id(), wakes);
  send_wakes(wakes);
  finish_transaction(txn, TxnState::kFailed);
}

void Site::finish_transaction(const std::shared_ptr<Transaction>& txn,
                              TxnState state) {
  txn->set_state(state);
  {
    std::lock_guard<std::mutex> lock(coord_mutex_);
    waiting_.erase(txn->id());
    pending_wakes_.erase(txn->id());
    ready_.erase(std::remove(ready_.begin(), ready_.end(), txn),
                 ready_.end());
    transactions_.erase(txn->id());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (state) {
      case TxnState::kCommitted: ++stats_.committed; break;
      case TxnState::kAborted: ++stats_.aborted; break;
      case TxnState::kFailed: ++stats_.failed; break;
      default: break;
    }
    if (txn->deadlock_victim()) ++stats_.deadlock_aborts;
  }

  txn::TxnResult result;
  result.id = txn->id();
  result.state = state;
  result.deadlock_victim = txn->deadlock_victim();
  result.wait_episodes = txn->wait_episodes();
  result.response_ms =
      static_cast<double>(now_micros() - txn::txn_begin_micros(txn->id())) /
      1000.0;
  result.rows.reserve(txn->op_count());
  for (std::size_t i = 0; i < txn->op_count(); ++i) {
    result.rows.push_back(txn->state_of(i).rows);
    if (result.error.empty() && !txn->state_of(i).error.empty()) {
      result.error = "operation " + std::to_string(i) + ": " +
                     txn->state_of(i).error;
    }
  }
  if (result.error.empty() && txn->deadlock_victim()) {
    result.error = "aborted as deadlock victim";
  }
  txn->complete(std::move(result));
}

// ---------------------------------------------------------------------------
// Participant: Algorithm 2.
// ---------------------------------------------------------------------------

void Site::participant_loop() {
  while (running_.load()) {
    Message message;
    {
      std::unique_lock<std::mutex> lock(part_mutex_);
      part_cv_.wait_for(lock, options_.poll_interval, [&] {
        return !running_.load() || !participant_queue_.empty();
      });
      if (!running_.load()) return;
      if (participant_queue_.empty()) continue;
      message = std::move(participant_queue_.front());
      participant_queue_.pop_front();
    }
    std::visit(
        [&](auto&& payload) {
          using T = std::decay_t<decltype(payload)>;
          if constexpr (std::is_same_v<T, net::ExecuteOperation>) {
            handle_execute(payload);
          } else if constexpr (std::is_same_v<T, net::UndoOperation>) {
            handle_undo(payload);
          } else if constexpr (std::is_same_v<T, net::CommitRequest>) {
            handle_commit(payload, message.from);
          } else if constexpr (std::is_same_v<T, net::AbortRequest>) {
            handle_abort(payload, message.from);
          } else if constexpr (std::is_same_v<T, net::FailNotice>) {
            handle_fail(payload);
          }
        },
        message.payload);
  }
}

void Site::handle_execute(const net::ExecuteOperation& request) {
  // Alg. 2 l. 4-13.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.remote_ops_processed;
  }
  net::OperationResult reply;
  reply.txn = request.txn;
  reply.op_index = request.op_index;
  reply.attempt = request.attempt;

  auto op = txn::parse_operation(request.op_text);
  if (!op) {
    reply.failed = true;
  } else {
    OpOutcome outcome = locks_.process_operation(
        request.txn, request.op_index, op.value(), request.coordinator);
    switch (outcome.kind) {
      case OpOutcome::Kind::kExecuted:
        reply.executed = true;
        reply.rows = std::move(outcome.rows);
        break;
      case OpOutcome::Kind::kConflict:
        reply.lock_conflict = true;
        break;
      case OpOutcome::Kind::kDeadlock:
        reply.deadlock = true;
        break;
      case OpOutcome::Kind::kFailed:
        reply.failed = true;
        break;
    }
  }
  send(request.coordinator, std::move(reply));
}

void Site::handle_undo(const net::UndoOperation& request) {
  locks_.undo_operation(request.txn, request.op_index);
}

void Site::handle_commit(const net::CommitRequest& request, SiteId from) {
  std::vector<WakeNotice> wakes;
  const util::Status status = locks_.commit(request.txn, wakes);
  send(from, net::CommitAck{request.txn, status.is_ok()});
  send_wakes(wakes);
}

void Site::handle_abort(const net::AbortRequest& request, SiteId from) {
  std::vector<WakeNotice> wakes;
  locks_.abort(request.txn, wakes);
  send(from, net::AbortAck{request.txn, true});
  send_wakes(wakes);
}

void Site::handle_fail(const net::FailNotice& request) {
  std::vector<WakeNotice> wakes;
  locks_.abort(request.txn, wakes);
  send_wakes(wakes);
}

}  // namespace dtx::core
