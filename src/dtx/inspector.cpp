#include "dtx/inspector.hpp"

#include <sstream>

namespace dtx::core {

std::string describe_site(Site& site) {
  const SiteStats stats = site.stats();
  std::ostringstream out;
  out << "site " << site.id() << " [" << site.lock_manager().protocol_name()
      << "]\n";
  out << "  transactions: committed=" << stats.committed
      << " aborted=" << stats.aborted << " failed=" << stats.failed
      << " deadlock_aborts=" << stats.deadlock_aborts << "\n";
  out << "  scheduler: wait_episodes=" << stats.wait_episodes
      << " remote_ops=" << stats.remote_ops_processed
      << " distributed_cycles=" << stats.distributed_cycles_found << "\n";
  out << "  recovery: restarts=" << stats.restarts
      << " orphans_committed=" << stats.orphans_committed
      << " orphans_aborted=" << stats.orphans_aborted
      << " commit_resends=" << stats.commit_resends << "\n";
  out << "  lock manager: acquisitions=" << stats.lock_manager.lock_acquisitions
      << " conflicts=" << stats.lock_manager.conflicts
      << " local_deadlocks=" << stats.lock_manager.local_deadlocks
      << " entries_now=" << site.lock_manager().lock_entries() << "\n";
  out << "  plan cache: hits=" << stats.plan_cache.hits
      << " misses=" << stats.plan_cache.misses
      << " evictions=" << stats.plan_cache.evictions
      << " entries=" << stats.plan_cache.entries << "\n";
  out << "  placement: catalog_epoch=" << stats.catalog_epoch
      << " stale_catalog_aborts=" << stats.stale_catalog_aborts
      << " migrations=" << stats.migrations
      << " migrated_bytes=" << stats.migrated_bytes << "\n";
  out << "  mvcc: snapshot_txns=" << stats.snapshot_txns
      << " views=" << stats.snapshots.reads
      << " chain_hits=" << stats.snapshots.chain_hits
      << " clones=" << stats.snapshots.clones
      << " materializes=" << stats.snapshots.materializes
      << " cut_retries=" << stats.snapshots.cut_retries
      << " chain_bytes_peak=" << stats.snapshots.chain_bytes_peak << "\n";
  const auto& table = site.lock_manager().table();
  if (table.shard_count() > 1) {
    out << "  lock shards (" << table.shard_count() << "):";
    for (const auto& shard : table.shard_stats()) {
      out << " " << shard.acquisitions << "/" << shard.conflicts;
    }
    out << "  (acquisitions/conflicts per shard)\n";
  }
  // NOTE: reading the DataManager requires site quiescence (see
  // Site::data_manager()); the inspector is a post-run diagnostic.
  out << "  data: documents=" << site.data_manager().documents().size()
      << " nodes=" << site.data_manager().total_nodes()
      << " guide_nodes=" << site.data_manager().total_guide_nodes() << "\n";
  const auto edges = site.lock_manager().wfg_edges();
  if (edges.empty()) {
    out << "  wait-for graph: empty\n";
  } else {
    out << "  wait-for graph:\n";
    for (const auto& edge : edges) {
      out << "    t" << edge.waiter << " -> t" << edge.holder << "\n";
    }
  }
  return out.str();
}

std::string describe_cluster(Cluster& cluster) {
  std::ostringstream out;
  // One pinned view: document list and hosting sets from the same epoch.
  const Catalog::View view = cluster.catalog().view();
  out << "cluster: " << cluster.site_count() << " sites, "
      << view->placement.size() << " documents (catalog epoch "
      << view->epoch << ")\n";
  for (const auto& [doc, sites] : view->placement) {
    out << "  " << doc << " @ sites";
    for (SiteId site : sites) out << " " << site;
    out << "\n";
  }
  for (std::size_t i = 0; i < cluster.site_count(); ++i) {
    out << describe_site(cluster.site(static_cast<SiteId>(i)));
  }
  const ClusterStats stats = cluster.stats();
  out << "network: messages=" << stats.network.messages_sent
      << " bytes=" << stats.network.bytes_sent
      << " dropped=" << stats.network.messages_dropped << "\n";
  return out.str();
}

std::string describe_tcp(const net::TcpStats& stats) {
  std::ostringstream out;
  out << "tcp: dials=" << stats.dials << " connects=" << stats.connects
      << " accepts=" << stats.accepts
      << " disconnects=" << stats.disconnects
      << " reconnects=" << stats.reconnects
      << " frames_rejected=" << stats.frames_rejected;
  return out.str();
}

}  // namespace dtx::core
