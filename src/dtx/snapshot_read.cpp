#include "dtx/snapshot_read.hpp"

#include <algorithm>

#include "xpath/evaluator.hpp"

namespace dtx::core {

net::SnapshotReadReply serve_snapshot_read(
    SiteContext& ctx, lock::TxnId txn, std::uint64_t epoch,
    const std::vector<std::uint32_t>& op_indices,
    const std::vector<txn::Operation>& ops) {
  net::SnapshotReadReply reply;
  reply.txn = txn;
  reply.op_indices = op_indices;

  // Membership fences: serve only under the epoch the coordinator routed
  // by, only documents this replica hosts right now, and never a replica
  // still being migrated in. All retryable (kStaleCatalog) — the client
  // resubmits once the catalogs converge.
  const Catalog::View catalog = ctx.catalog.view();
  const auto fence = [&](const std::string& detail) {
    reply.reason = txn::AbortReason::kStaleCatalog;
    reply.error = detail;
    sync::MutexLock lock(ctx.stats_mutex);
    ++ctx.stats.stale_catalog_aborts;
    return reply;
  };
  if (epoch != catalog->epoch) {
    return fence("catalog epoch mismatch (request " + std::to_string(epoch) +
                 ", site " + std::to_string(catalog->epoch) + ")");
  }

  // Compile every query first (plan-cache hit in the steady state) and
  // collect the distinct documents of the cut.
  std::vector<query::PlanPtr> plans;
  plans.reserve(ops.size());
  std::vector<std::string> docs;
  for (const txn::Operation& op : ops) {
    if (op.is_update()) {
      reply.reason = txn::AbortReason::kParseError;
      reply.error = "snapshot read carries an update operation";
      return reply;
    }
    if (!catalog->hosts(ctx.options.id, op.doc)) {
      return fence("document '" + op.doc + "' is not hosted here");
    }
    if (ctx.is_importing(op.doc)) {
      return fence("replica of '" + op.doc + "' is still importing");
    }
    auto plan = ctx.plans().resolve(op);
    if (!plan) {
      reply.reason = txn::AbortReason::kParseError;
      reply.error = plan.status().to_string();
      return reply;
    }
    if (std::find(docs.begin(), docs.end(), op.doc) == docs.end()) {
      docs.push_back(op.doc);
    }
    plans.push_back(std::move(plan).value());
  }

  auto cut = ctx.snaps().snapshot(docs);
  if (!cut) {
    // Unknown document matches the locked path's taxonomy (kParseError);
    // anything else — e.g. a cut that lost the checkpoint race three
    // times — is transient and retryable.
    reply.reason = cut.status().code() == util::Code::kNotFound
                       ? txn::AbortReason::kParseError
                       : txn::AbortReason::kSiteFailure;
    reply.error = cut.status().to_string();
    return reply;
  }
  reply.rows.reserve(plans.size());
  for (const query::PlanPtr& plan : plans) {
    const SnapshotStore::DocView& view = cut.value().at(plan->doc());
    reply.rows.push_back(xpath::evaluate_strings(plan->query(), *view.tree));
  }
  reply.ok = true;
  return reply;
}

}  // namespace dtx::core
