#include "dtx/snapshot_read.hpp"

#include <algorithm>

#include "xpath/evaluator.hpp"

namespace dtx::core {

net::SnapshotReadReply serve_snapshot_read(
    SiteContext& ctx, lock::TxnId txn,
    const std::vector<std::uint32_t>& op_indices,
    const std::vector<txn::Operation>& ops) {
  net::SnapshotReadReply reply;
  reply.txn = txn;
  reply.op_indices = op_indices;

  // Compile every query first (plan-cache hit in the steady state) and
  // collect the distinct documents of the cut.
  std::vector<query::PlanPtr> plans;
  plans.reserve(ops.size());
  std::vector<std::string> docs;
  for (const txn::Operation& op : ops) {
    if (op.is_update()) {
      reply.reason = txn::AbortReason::kParseError;
      reply.error = "snapshot read carries an update operation";
      return reply;
    }
    auto plan = ctx.plans().resolve(op);
    if (!plan) {
      reply.reason = txn::AbortReason::kParseError;
      reply.error = plan.status().to_string();
      return reply;
    }
    if (std::find(docs.begin(), docs.end(), op.doc) == docs.end()) {
      docs.push_back(op.doc);
    }
    plans.push_back(std::move(plan).value());
  }

  auto cut = ctx.snaps().snapshot(docs);
  if (!cut) {
    // Unknown document matches the locked path's taxonomy (kParseError);
    // anything else — e.g. a cut that lost the checkpoint race three
    // times — is transient and retryable.
    reply.reason = cut.status().code() == util::Code::kNotFound
                       ? txn::AbortReason::kParseError
                       : txn::AbortReason::kSiteFailure;
    reply.error = cut.status().to_string();
    return reply;
  }
  reply.rows.reserve(plans.size());
  for (const query::PlanPtr& plan : plans) {
    const SnapshotStore::DocView& view = cut.value().at(plan->doc());
    reply.rows.push_back(xpath::evaluate_strings(plan->query(), *view.tree));
  }
  reply.ok = true;
  return reply;
}

}  // namespace dtx::core
