#include "query/plan.hpp"

namespace dtx::query {

util::Result<Plan> compile(txn::Operation op) {
  std::string text = op.to_string();
  return compile(std::move(op), std::move(text));
}

util::Result<Plan> compile(txn::Operation op, std::string canonical_text) {
  Plan plan;
  plan.text_ = std::move(canonical_text);
  if (op.is_update() && op.update.kind == xupdate::UpdateKind::kInsert) {
    auto probe = xupdate::probe_fragment(op.update);
    if (!probe) return probe.status();
    plan.prematch_ = std::move(probe).value();
  }
  plan.op_ = std::move(op);
  return plan;
}

util::Result<Plan> compile_text(std::string_view text) {
  auto op = txn::parse_operation(text);
  if (!op) return op.status();
  return compile(std::move(op).value());
}

}  // namespace dtx::query
