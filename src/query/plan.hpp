// Compiled form of one DTX operation (the plan layer of the execution
// pipeline: text -> PreparedTxn -> typed wire op -> PlanCache -> Plan).
//
// A Plan owns the fully-parsed txn::Operation (XPath AST, compiled update
// op) plus everything that can be hoisted out of the per-execution hot
// path: the canonical textual form (the site plan-cache key) and, for
// inserts, the DataGuide pre-match hook — the fragment's root label and id
// condition, which the XDGL lock rules previously re-derived by parsing
// the XML fragment on *every* lock-set computation. Compile once, execute
// many times: wait-mode re-executions and deadlock retries run the same
// immutable Plan.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "txn/operation.hpp"
#include "util/status.hpp"
#include "xupdate/update_op.hpp"

namespace dtx::query {

class Plan {
 public:
  [[nodiscard]] const txn::Operation& op() const noexcept { return op_; }
  /// Canonical textual form (round-trippable; the plan-cache key).
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] const std::string& doc() const noexcept { return op_.doc; }
  [[nodiscard]] bool is_update() const noexcept { return op_.is_update(); }
  [[nodiscard]] const xpath::Path& query() const noexcept {
    return op_.query;
  }
  [[nodiscard]] const xupdate::UpdateOp& update() const noexcept {
    return op_.update;
  }

  /// DataGuide pre-match hook: fragment facts the lock protocol needs
  /// before touching the guide (insert operations only, nullptr otherwise).
  [[nodiscard]] const xupdate::FragmentProbe* prematch() const noexcept {
    return prematch_.has_value() ? &*prematch_ : nullptr;
  }

 private:
  friend util::Result<Plan> compile(txn::Operation op,
                                    std::string canonical_text);

  Plan() = default;

  txn::Operation op_;
  std::string text_;
  std::optional<xupdate::FragmentProbe> prematch_;
};

/// Shared handle to an immutable plan (what the PlanCache hands out).
using PlanPtr = std::shared_ptr<const Plan>;

/// Compiles an already-parsed operation: canonical text plus, for inserts,
/// the fragment pre-match (which validates the fragment XML once, instead
/// of at every lock-set computation).
util::Result<Plan> compile(txn::Operation op);

/// Same, with the canonical text already at hand (the PlanCache computed
/// it as the cache key) — skips the second serialization on a miss.
util::Result<Plan> compile(txn::Operation op, std::string canonical_text);

/// Parses the textual form and compiles it (dtxsh / workload files / the
/// parse-per-execute bench baseline).
util::Result<Plan> compile_text(std::string_view text);

}  // namespace dtx::query
