#include "query/plan_cache.hpp"

#include <algorithm>
#include <functional>

#include "util/strings.hpp"

namespace dtx::query {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  std::size_t shard_count = std::max<std::size_t>(1, shards);
  if (capacity_ != 0) shard_count = std::min(shard_count, capacity_);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shard_count - 1) / shard_count;
}

PlanCache::Shard& PlanCache::shard_of(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

template <typename CompileFn>
util::Result<PlanPtr> PlanCache::resolve_key(std::string key,
                                             CompileFn&& compile_fn) {
  Shard& shard = shard_of(key);
  {
    sync::MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    ++shard.misses;
  }

  // Compile outside the shard lock: misses of different keys on one shard
  // must not serialize their parses. The callback receives the key so the
  // typed path reuses it as the plan's canonical text.
  util::Result<Plan> compiled = compile_fn(key);
  if (!compiled) return compiled.status();
  PlanPtr plan = std::make_shared<const Plan>(std::move(compiled).value());
  if (per_shard_capacity_ == 0) return plan;  // caching disabled

  sync::MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A racing resolve of the same key inserted first; adopt its plan.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }
  shard.lru.emplace_front(key, plan);
  shard.index.emplace(std::move(key), shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return plan;
}

util::Result<PlanPtr> PlanCache::resolve(const txn::Operation& op) {
  // The key is the canonical serialization — an O(length) string build per
  // lookup. Deliberate: it is a plain copy-out of the AST, and on a hit it
  // stands in for the Plan's own Operation deep copy plus (for inserts)
  // the fragment probe, while keeping the wire payload free of a parallel
  // textual field and giving every execution path one observable resolve
  // point. The textual path (resolve_text) is where a hit additionally
  // skips the full lex + parse (abl_plan_cache quantifies that gap).
  std::string key = op.to_string();
  return resolve_key(std::move(key), [&op](const std::string& canonical) {
    return compile(op, canonical);
  });
}

util::Result<PlanPtr> PlanCache::resolve_text(std::string_view text) {
  std::string key(util::trim(text));
  return resolve_key(std::move(key), [text](const std::string& /*key*/) {
    // The raw text is the key; the plan still carries its own canonical
    // serialization (which may differ in whitespace from the input).
    return compile_text(text);
  });
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  return out;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace dtx::query
