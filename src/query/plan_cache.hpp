// Site-wide cache of compiled operation plans: a sharded LRU keyed by the
// operation's canonical text, shared across transactions and workers. The
// participant and the coordinator's local-execution path both resolve
// operations here, so a hot operation is compiled once per site and every
// re-execution — wait-mode retries, deadlock-retry resubmissions, repeated
// workload queries — runs the cached plan without touching the XPath lexer
// or parser again.
//
// Capacity 0 disables caching entirely (every resolve compiles a private
// plan); the abl_plan_cache bench uses that as the parse-per-execute
// baseline. Each shard is an independently-locked LRU list; compilation
// happens outside the shard lock, so two workers missing different keys of
// the same shard never serialize their parses (a racing double-compile of
// the same key is benign: the loser adopts the winner's entry).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "query/plan.hpp"
#include "util/sync.hpp"

namespace dtx::query {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  ///< plans resident right now

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  /// Accumulates another cache's counters (cluster-level aggregation).
  void merge(const PlanCacheStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    entries += other.entries;
  }
};

class PlanCache {
 public:
  /// `capacity` sizes the cache (0 = caching off); `shards`
  /// independently-locked LRU segments (clamped to capacity). The bound is
  /// enforced per shard at ceil(capacity / shards), so a skewed key
  /// distribution may hold up to shards-1 plans above `capacity` in total
  /// while a hot shard evicts earlier — the usual sharded-LRU tradeoff for
  /// not taking a global lock.
  explicit PlanCache(std::size_t capacity, std::size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Resolves an already-parsed operation, keyed by its canonical text.
  /// Never re-parses: a miss compiles straight from the typed form.
  util::Result<PlanPtr> resolve(const txn::Operation& op);

  /// Resolves a textual operation, keyed by the (trimmed) text itself. A
  /// hit skips the parse entirely; a miss parses + compiles once.
  util::Result<PlanPtr> resolve_text(std::string_view text);

  /// Aggregated counters over all shards.
  [[nodiscard]] PlanCacheStats stats() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Drops every cached plan (counters are kept).
  void clear();

 private:
  struct Shard {
    mutable sync::Mutex mutex{sync::LockRank::kPlanCacheShard};
    /// Front = most recently used. The map indexes list entries by key.
    std::list<std::pair<std::string, PlanPtr>> lru DTX_GUARDED_BY(mutex);
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, PlanPtr>>::iterator>
        index DTX_GUARDED_BY(mutex);
    std::uint64_t hits DTX_GUARDED_BY(mutex) = 0;
    std::uint64_t misses DTX_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions DTX_GUARDED_BY(mutex) = 0;
  };

  template <typename CompileFn>
  util::Result<PlanPtr> resolve_key(std::string key, CompileFn&& compile_fn);

  Shard& shard_of(const std::string& key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dtx::query
