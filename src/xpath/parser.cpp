#include "xpath/parser.hpp"

#include <cstdlib>

#include "xpath/lexer.hpp"

namespace dtx::xpath {

namespace {

using util::Code;
using util::Result;
using util::Status;

class PathParser {
 public:
  explicit PathParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Path> parse_absolute() {
    Path path;
    if (!at(TokenKind::kSlash) && !at(TokenKind::kDoubleSlash)) {
      return error("an absolute path must start with '/' or '//'");
    }
    while (at(TokenKind::kSlash) || at(TokenKind::kDoubleSlash)) {
      const Axis axis =
          at(TokenKind::kDoubleSlash) ? Axis::kDescendant : Axis::kChild;
      advance();
      auto step = parse_step(axis);
      if (!step) return step.status();
      path.steps.push_back(std::move(step).value());
    }
    if (!at(TokenKind::kEnd)) return error("trailing tokens after path");
    if (auto status = validate_attribute_position(path.steps); !status) {
      return status;
    }
    return path;
  }

  Result<RelativePath> parse_rel() {
    auto steps = parse_relative_steps();
    if (!steps) return steps.status();
    if (!at(TokenKind::kEnd)) return error("trailing tokens after path");
    RelativePath path;
    path.steps = std::move(steps).value();
    if (auto status = validate_attribute_position(path.steps); !status) {
      return status;
    }
    return path;
  }

 private:
  [[nodiscard]] const Token& current() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const {
    return current().kind == kind;
  }
  void advance() { ++pos_; }

  Status error(const std::string& what) const {
    return Status(Code::kInvalidArgument,
                  "XPath parse error at offset " +
                      std::to_string(current().offset) + ": " + what);
  }

  static Status ok_status() { return Status::ok(); }

  /// Attribute tests are only legal as the final step of a path.
  Status validate_attribute_position(const std::vector<Step>& steps) const {
    for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
      if (steps[i].test == NodeTest::kAttribute) {
        return Status(Code::kInvalidArgument,
                      "attribute step '@" + steps[i].name +
                          "' must be the last step");
      }
    }
    return ok_status();
  }

  Result<std::vector<Step>> parse_relative_steps() {
    std::vector<Step> steps;
    // First step: optional leading axis (predicates usually omit it).
    Axis axis = Axis::kChild;
    if (at(TokenKind::kSlash) || at(TokenKind::kDoubleSlash)) {
      axis = at(TokenKind::kDoubleSlash) ? Axis::kDescendant : Axis::kChild;
      advance();
    }
    auto first = parse_step(axis);
    if (!first) return first.status();
    steps.push_back(std::move(first).value());
    while (at(TokenKind::kSlash) || at(TokenKind::kDoubleSlash)) {
      const Axis next_axis =
          at(TokenKind::kDoubleSlash) ? Axis::kDescendant : Axis::kChild;
      advance();
      auto step = parse_step(next_axis);
      if (!step) return step.status();
      steps.push_back(std::move(step).value());
    }
    return steps;
  }

  Result<Step> parse_step(Axis axis) {
    Step step;
    step.axis = axis;
    if (at(TokenKind::kStar)) {
      step.test = NodeTest::kWildcard;
      advance();
    } else if (at(TokenKind::kTextFn)) {
      step.test = NodeTest::kText;
      advance();
    } else if (at(TokenKind::kAt)) {
      advance();
      if (!at(TokenKind::kName)) return error("expected a name after '@'");
      step.test = NodeTest::kAttribute;
      step.name = current().text;
      advance();
    } else if (at(TokenKind::kName)) {
      step.test = NodeTest::kName;
      step.name = current().text;
      advance();
    } else {
      return error("expected a step (name, '*', text() or '@name')");
    }

    while (at(TokenKind::kLBracket)) {
      advance();
      auto predicate = parse_predicate();
      if (!predicate) return predicate.status();
      if (!at(TokenKind::kRBracket)) return error("expected ']'");
      advance();
      step.predicates.push_back(std::move(predicate).value());
    }
    return step;
  }

  Result<Predicate> parse_predicate() {
    Predicate predicate;
    if (at(TokenKind::kNumber)) {
      // Position predicate: [3]
      predicate.kind = PredicateKind::kPosition;
      predicate.position =
          static_cast<std::size_t>(std::strtoull(current().text.c_str(),
                                                 nullptr, 10));
      advance();
      if (predicate.position == 0) {
        return error("position predicates are 1-based");
      }
      return predicate;
    }
    auto steps = parse_relative_steps();
    if (!steps) return steps.status();
    predicate.path.steps = std::move(steps).value();
    if (at(TokenKind::kEquals)) {
      advance();
      if (!at(TokenKind::kLiteral) && !at(TokenKind::kNumber)) {
        return error("expected a literal after '='");
      }
      predicate.kind = PredicateKind::kEquals;
      predicate.literal = current().text;
      advance();
    } else {
      predicate.kind = PredicateKind::kExists;
    }
    return predicate;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Path> parse(std::string_view expression) {
  auto tokens = tokenize(expression);
  if (!tokens) return tokens.status();
  PathParser parser(std::move(tokens).value());
  return parser.parse_absolute();
}

Result<RelativePath> parse_relative(std::string_view expression) {
  auto tokens = tokenize(expression);
  if (!tokens) return tokens.status();
  PathParser parser(std::move(tokens).value());
  return parser.parse_rel();
}

}  // namespace dtx::xpath
