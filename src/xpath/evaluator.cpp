#include "xpath/evaluator.hpp"

#include <cstdlib>
#include <unordered_set>

namespace dtx::xpath {

namespace {

using xml::Node;

bool parse_number(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

/// Collects the candidates one step produces for a single context node,
/// before predicate filtering, in document order.
void collect_candidates(Node& context, const Step& step,
                        std::vector<Node*>& out) {
  switch (step.test) {
    case NodeTest::kAttribute:
      if (context.is_element() && context.attribute(step.name) != nullptr) {
        out.push_back(&context);
      }
      return;
    case NodeTest::kText:
      if (step.axis == Axis::kChild) {
        for (const auto& child : context.children()) {
          if (child->is_text()) out.push_back(child.get());
        }
      } else {
        context.visit([&](const Node& node) {
          if (&node != &context && node.is_text()) {
            out.push_back(const_cast<Node*>(&node));
          }
          return true;
        });
      }
      return;
    case NodeTest::kName:
    case NodeTest::kWildcard: {
      const auto matches = [&](const Node& node) {
        return node.is_element() &&
               (step.test == NodeTest::kWildcard || node.name() == step.name);
      };
      if (step.axis == Axis::kChild) {
        for (const auto& child : context.children()) {
          if (matches(*child)) out.push_back(child.get());
        }
      } else {
        context.visit([&](const Node& node) {
          if (&node != &context && matches(node)) {
            out.push_back(const_cast<Node*>(&node));
          }
          return true;
        });
      }
      return;
    }
  }
}

bool predicate_holds(Node& candidate, const Predicate& predicate);

/// Applies the predicate list of a step to the per-context candidate list.
/// Position predicates filter by the candidate's index in the current list,
/// matching XPath's left-to-right predicate application.
void apply_predicates(const Step& step, std::vector<Node*>& candidates) {
  for (const auto& predicate : step.predicates) {
    if (predicate.kind == PredicateKind::kPosition) {
      if (predicate.position > candidates.size()) {
        candidates.clear();
      } else {
        Node* kept = candidates[predicate.position - 1];
        candidates.assign(1, kept);
      }
      continue;
    }
    std::vector<Node*> kept;
    kept.reserve(candidates.size());
    for (Node* node : candidates) {
      if (predicate_holds(*node, predicate)) kept.push_back(node);
    }
    candidates = std::move(kept);
  }
}

std::vector<Node*> evaluate_steps(const std::vector<Step>& steps,
                                  std::vector<Node*> contexts) {
  for (const auto& step : steps) {
    std::vector<Node*> next;
    std::unordered_set<const Node*> seen;
    for (Node* context : contexts) {
      std::vector<Node*> candidates;
      collect_candidates(*context, step, candidates);
      apply_predicates(step, candidates);
      for (Node* node : candidates) {
        if (seen.insert(node).second) next.push_back(node);
      }
    }
    contexts = std::move(next);
    if (contexts.empty()) break;
  }
  return contexts;
}

bool predicate_holds(Node& candidate, const Predicate& predicate) {
  const auto& steps = predicate.path.steps;
  // Attribute-final predicate paths compare / test the attribute itself.
  const bool attribute_final =
      !steps.empty() && steps.back().test == NodeTest::kAttribute;

  std::vector<Node*> selected = evaluate_steps(steps, {&candidate});
  if (predicate.kind == PredicateKind::kExists) return !selected.empty();

  for (Node* node : selected) {
    std::string value;
    if (attribute_final) {
      const std::string* attr = node->attribute(steps.back().name);
      if (attr == nullptr) continue;
      value = *attr;
    } else {
      value = string_value(*node);
    }
    if (literal_equals(value, predicate.literal)) return true;
  }
  return false;
}

}  // namespace

std::string string_value(const xml::Node& node) {
  return node.is_text() ? node.value() : node.deep_text();
}

bool literal_equals(const std::string& value, const std::string& literal) {
  double a = 0.0;
  double b = 0.0;
  if (parse_number(value, a) && parse_number(literal, b)) return a == b;
  return value == literal;
}

std::vector<xml::Node*> evaluate(const Path& path,
                                 const xml::Document& document) {
  if (!document.has_root() || path.empty()) return {};
  // The virtual document node: treat the root element as the single "child"
  // of an invisible context, i.e. the first step tests the root itself for
  // the child axis and the whole tree for the descendant axis.
  const Step& first = path.steps.front();
  std::vector<Node*> contexts;
  Node* root = document.root();

  std::vector<Node*> first_candidates;
  const auto root_matches = [&] {
    switch (first.test) {
      case NodeTest::kName: return root->name() == first.name;
      case NodeTest::kWildcard: return true;
      case NodeTest::kText: return false;
      case NodeTest::kAttribute: return root->attribute(first.name) != nullptr;
    }
    return false;
  };
  if (first.axis == Axis::kChild) {
    if (root_matches()) first_candidates.push_back(root);
  } else {
    if (root_matches()) first_candidates.push_back(root);
    collect_candidates(*root, first, first_candidates);
  }
  apply_predicates(first, first_candidates);
  contexts = std::move(first_candidates);

  std::vector<Step> rest(path.steps.begin() + 1, path.steps.end());
  return evaluate_steps(rest, std::move(contexts));
}

std::vector<xml::Node*> evaluate_relative(const RelativePath& path,
                                          xml::Node& context) {
  return evaluate_steps(path.steps, {&context});
}

std::vector<std::string> evaluate_strings(const Path& path,
                                          const xml::Document& document) {
  std::vector<xml::Node*> nodes = evaluate(path, document);
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (xml::Node* node : nodes) {
    if (path.targets_attribute()) {
      const std::string* attr = node->attribute(path.steps.back().name);
      out.push_back(attr == nullptr ? std::string() : *attr);
    } else {
      out.push_back(string_value(*node));
    }
  }
  return out;
}

}  // namespace dtx::xpath
