#include "xpath/ast.hpp"

namespace dtx::xpath {

namespace {

std::string steps_to_string(const std::vector<Step>& steps,
                            bool leading_axis) {
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    out += steps[i].to_string(/*leading_axis=*/leading_axis || i > 0);
  }
  return out;
}

}  // namespace

std::string Step::to_string(bool leading_axis) const {
  std::string out;
  if (leading_axis) out += axis == Axis::kDescendant ? "//" : "/";
  switch (test) {
    case NodeTest::kName: out += name; break;
    case NodeTest::kWildcard: out += '*'; break;
    case NodeTest::kText: out += "text()"; break;
    case NodeTest::kAttribute:
      out += '@';
      out += name;
      break;
  }
  for (const auto& predicate : predicates) out += predicate.to_string();
  return out;
}

std::string RelativePath::to_string() const {
  // Relative paths start without a leading slash: person/name.
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i == 0 && steps[i].axis == Axis::kChild) {
      out += steps[i].to_string(/*leading_axis=*/false);
    } else {
      out += steps[i].to_string();
    }
  }
  return out;
}

std::string Predicate::to_string() const {
  // Built by append, not one operator+ chain: GCC 12 -Wrestrict false
  // positive (PR105329).
  std::string out = "[";
  switch (kind) {
    case PredicateKind::kPosition:
      out += std::to_string(position);
      break;
    case PredicateKind::kExists:
      out += path.to_string();
      break;
    case PredicateKind::kEquals:
      out += path.to_string();
      out += "='";
      out += literal;
      out += '\'';
      break;
  }
  out += ']';
  return out;
}

std::string Path::to_string() const {
  return steps_to_string(steps, /*leading_axis=*/true);
}

}  // namespace dtx::xpath
