// Recursive-descent parser producing xpath::Path from expression text.
#pragma once

#include <string_view>

#include "util/status.hpp"
#include "xpath/ast.hpp"

namespace dtx::xpath {

/// Parses an absolute path expression ("/site//person[id='4']/name").
util::Result<Path> parse(std::string_view expression);

/// Parses a relative path ("profile/age", "@category"), as used inside
/// predicates and by update-operation payload anchors.
util::Result<RelativePath> parse_relative(std::string_view expression);

}  // namespace dtx::xpath
