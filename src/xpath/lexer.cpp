#include "xpath/lexer.hpp"

#include <cctype>

namespace dtx::xpath {

namespace {

using util::Code;
using util::Status;

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

util::Result<std::vector<Token>> tokenize(std::string_view expression) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto error = [&](const std::string& what) {
    return Status(Code::kInvalidArgument,
                  "XPath lex error at offset " + std::to_string(i) + ": " +
                      what + " in '" + std::string(expression) + "'");
  };

  while (i < expression.size()) {
    const char c = expression[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    switch (c) {
      case '/':
        if (i + 1 < expression.size() && expression[i + 1] == '/') {
          token.kind = TokenKind::kDoubleSlash;
          i += 2;
        } else {
          token.kind = TokenKind::kSlash;
          ++i;
        }
        break;
      case '*':
        token.kind = TokenKind::kStar;
        ++i;
        break;
      case '@':
        token.kind = TokenKind::kAt;
        ++i;
        break;
      case '[':
        token.kind = TokenKind::kLBracket;
        ++i;
        break;
      case ']':
        token.kind = TokenKind::kRBracket;
        ++i;
        break;
      case '=':
        token.kind = TokenKind::kEquals;
        ++i;
        break;
      case '\'':
      case '"': {
        const char quote = c;
        const std::size_t start = ++i;
        while (i < expression.size() && expression[i] != quote) ++i;
        if (i >= expression.size()) return error("unterminated literal");
        token.kind = TokenKind::kLiteral;
        token.text = std::string(expression.substr(start, i - start));
        ++i;  // closing quote
        break;
      }
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          const std::size_t start = i;
          while (i < expression.size() &&
                 (std::isdigit(static_cast<unsigned char>(expression[i])) ||
                  expression[i] == '.')) {
            ++i;
          }
          token.kind = TokenKind::kNumber;
          token.text = std::string(expression.substr(start, i - start));
        } else if (is_name_start(c)) {
          const std::size_t start = i;
          while (i < expression.size() && is_name_char(expression[i])) ++i;
          std::string name(expression.substr(start, i - start));
          if (name == "text" && expression.substr(i, 2) == "()") {
            token.kind = TokenKind::kTextFn;
            i += 2;
          } else {
            token.kind = TokenKind::kName;
            token.text = std::move(name);
          }
        } else {
          return error(std::string("unexpected character '") + c + "'");
        }
    }
    tokens.push_back(std::move(token));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", expression.size()});
  return tokens;
}

}  // namespace dtx::xpath
