// Evaluator for the XPath subset over xml::Document trees.
//
// Semantics follow XPath 1.0 restricted to the supported grammar:
//  * absolute paths evaluate from a virtual document node whose only child is
//    the root element;
//  * '/'  = child axis, '//' = descendant axis (any depth below the context);
//  * position predicates are applied per context node, after the other
//    predicates that precede them lexically;
//  * equality compares the candidate's string-value (concatenated descendant
//    text, or attribute value) with the literal — numerically when both
//    sides parse as numbers, as strings otherwise.
#pragma once

#include <string>
#include <vector>

#include "xml/document.hpp"
#include "xpath/ast.hpp"

namespace dtx::xpath {

/// Nodes selected by `path`, in document order without duplicates.
/// For attribute-final paths the *owning elements* are returned; use
/// evaluate_strings to obtain the attribute values.
std::vector<xml::Node*> evaluate(const Path& path,
                                 const xml::Document& document);

/// Relative-path evaluation from an explicit context element.
std::vector<xml::Node*> evaluate_relative(const RelativePath& path,
                                          xml::Node& context);

/// String-values of the selected nodes (attribute values for attribute-final
/// paths, string-value of the node otherwise).
std::vector<std::string> evaluate_strings(const Path& path,
                                          const xml::Document& document);

/// XPath string-value of a node (text payload or concatenated subtree text).
std::string string_value(const xml::Node& node);

/// Literal comparison rule used by equality predicates.
bool literal_equals(const std::string& value, const std::string& literal);

}  // namespace dtx::xpath
