// Tokenizer for the XPath subset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace dtx::xpath {

enum class TokenKind : std::uint8_t {
  kSlash,        // /
  kDoubleSlash,  // //
  kName,         // element / attribute name
  kStar,         // *
  kAt,           // @
  kLBracket,     // [
  kRBracket,     // ]
  kEquals,       // =
  kLiteral,      // 'quoted' or "quoted"
  kNumber,       // digits (optionally with a decimal point)
  kTextFn,       // text()
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // name / literal / number payload
  std::size_t offset = 0;  // for error messages
};

/// Tokenizes the full expression; fails on characters outside the subset.
util::Result<std::vector<Token>> tokenize(std::string_view expression);

}  // namespace dtx::xpath
