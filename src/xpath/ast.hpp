// AST for the XPath subset DTX shares with the XDGL protocol (paper §2:
// "XDGL uses a subset of the XPath language"; DTX inherits it).
//
// Supported grammar (absolute paths only, as in XDGL):
//
//   path       := ('/' | '//') step (('/' | '//') step)*
//   step       := nametest predicate*
//   nametest   := NAME | '*' | 'text()' | '@' NAME       (@ only as last step
//                                                          or inside predicates)
//   predicate  := '[' relpath ']'                          existence
//                | '[' relpath '=' literal ']'             value equality
//                | '[' '@' NAME ('=' literal)? ']'         attribute tests
//                | '[' NUMBER ']'                          position (1-based)
//   relpath    := step (('/' | '//') step)*
//   literal    := quoted string | number
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtx::xpath {

enum class Axis : std::uint8_t {
  kChild,       ///< '/'
  kDescendant,  ///< '//'
};

enum class NodeTest : std::uint8_t {
  kName,       ///< element tag name
  kWildcard,   ///< '*'
  kText,       ///< text()
  kAttribute,  ///< @name
};

struct Step;

/// Relative path used inside predicates (same step structure, but evaluated
/// from the candidate node instead of the document root).
struct RelativePath {
  std::vector<Step> steps;

  [[nodiscard]] std::string to_string() const;
};

enum class PredicateKind : std::uint8_t {
  kExists,    ///< [path]
  kEquals,    ///< [path = literal]
  kPosition,  ///< [n]
};

struct Predicate {
  PredicateKind kind = PredicateKind::kExists;
  RelativePath path;        // for kExists / kEquals
  std::string literal;      // for kEquals
  std::size_t position = 0; // for kPosition (1-based)

  [[nodiscard]] std::string to_string() const;
};

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test = NodeTest::kName;
  std::string name;  // for kName / kAttribute
  std::vector<Predicate> predicates;

  [[nodiscard]] std::string to_string(bool leading_axis = true) const;
};

/// A parsed absolute path expression.
struct Path {
  std::vector<Step> steps;

  [[nodiscard]] bool empty() const noexcept { return steps.empty(); }

  /// True when the final step selects an attribute.
  [[nodiscard]] bool targets_attribute() const noexcept {
    return !steps.empty() && steps.back().test == NodeTest::kAttribute;
  }

  /// Round-trippable textual form (re-parsing yields an equivalent AST).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace dtx::xpath
