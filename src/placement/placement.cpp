#include "placement/placement.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/strings.hpp"

namespace dtx::placement {

namespace {

const std::vector<SiteId> kNoSites;

}  // namespace

const char* placement_policy_name(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kFixed:
      return "fixed";
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kHashRing:
      return "hash-ring";
  }
  return "?";
}

util::Result<PlacementPolicy> parse_placement_policy(const std::string& text) {
  if (text == "fixed") return PlacementPolicy::kFixed;
  if (text == "round-robin" || text == "rr") return PlacementPolicy::kRoundRobin;
  if (text == "hash-ring" || text == "ring") return PlacementPolicy::kHashRing;
  return util::Status(util::Code::kInvalidArgument,
                      "unknown placement policy '" + text +
                          "' (fixed | round-robin | hash-ring)");
}

std::uint64_t hash64(const std::string& text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char byte : text) {
    hash ^= static_cast<std::uint8_t>(byte);
    hash *= 1099511628211ULL;
  }
  // FNV-1a alone clusters short near-identical names ("doc0", "doc1", ...)
  // into one narrow band of the ring; a fmix64-style finalizer spreads them
  // across the full 64-bit space.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ULL;
  hash ^= hash >> 33;
  return hash;
}

std::vector<SiteId> assign_sites(PlacementPolicy policy,
                                 std::size_t doc_index,
                                 const std::string& doc_name,
                                 const std::vector<SiteId>& members,
                                 std::size_t replication) {
  std::vector<SiteId> ordered = members;
  std::sort(ordered.begin(), ordered.end());
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  if (ordered.empty()) return ordered;
  std::size_t copies = replication;
  if (copies == 0 || copies > ordered.size()) copies = ordered.size();
  if (copies == ordered.size()) return ordered;  // full replication

  std::size_t start = 0;
  switch (policy) {
    case PlacementPolicy::kFixed:
      start = 0;
      break;
    case PlacementPolicy::kRoundRobin:
      start = doc_index % ordered.size();
      break;
    case PlacementPolicy::kHashRing: {
      // Classic consistent hashing: each member owns several virtual points
      // on the ring; the document lands on the successor of its own hash and
      // replicas on the next DISTINCT members clockwise. Adding a member
      // moves only the documents whose ring segments its points split.
      constexpr std::size_t kVirtualNodes = 64;
      std::vector<std::pair<std::uint64_t, std::size_t>> ring;
      ring.reserve(ordered.size() * kVirtualNodes);
      for (std::size_t i = 0; i < ordered.size(); ++i) {
        const std::string base = "site:" + std::to_string(ordered[i]) + "#";
        for (std::size_t v = 0; v < kVirtualNodes; ++v) {
          ring.emplace_back(hash64(base + std::to_string(v)), i);
        }
      }
      std::sort(ring.begin(), ring.end());
      const std::uint64_t point = hash64(doc_name);
      std::size_t slot = 0;
      while (slot < ring.size() && ring[slot].first < point) ++slot;
      if (slot == ring.size()) slot = 0;
      // Walk clockwise collecting distinct members.
      std::vector<SiteId> chosen;
      chosen.reserve(copies);
      for (std::size_t step = 0;
           step < ring.size() && chosen.size() < copies; ++step) {
        const SiteId candidate = ordered[ring[(slot + step) % ring.size()].second];
        if (std::find(chosen.begin(), chosen.end(), candidate) ==
            chosen.end()) {
          chosen.push_back(candidate);
        }
      }
      std::sort(chosen.begin(), chosen.end());
      return chosen;
    }
  }
  std::vector<SiteId> chosen;
  chosen.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    chosen.push_back(ordered[(start + i) % ordered.size()]);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

const std::vector<SiteId>& CatalogEpoch::sites_of(
    const std::string& name) const noexcept {
  const auto it = placement.find(name);
  return it == placement.end() ? kNoSites : it->second;
}

bool CatalogEpoch::has_document(const std::string& name) const {
  return placement.count(name) != 0;
}

bool CatalogEpoch::hosts(SiteId site, const std::string& name) const {
  const std::vector<SiteId>& sites = sites_of(name);
  return std::find(sites.begin(), sites.end(), site) != sites.end();
}

bool CatalogEpoch::is_member(SiteId site) const {
  return std::find(members.begin(), members.end(), site) != members.end();
}

std::vector<std::string> CatalogEpoch::documents() const {
  std::vector<std::string> names;
  names.reserve(placement.size());
  for (const auto& [name, sites] : placement) {
    (void)sites;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> CatalogEpoch::documents_at(SiteId site) const {
  std::vector<std::string> names;
  for (const auto& [name, sites] : placement) {
    if (std::find(sites.begin(), sites.end(), site) != sites.end()) {
      names.push_back(name);
    }
  }
  return names;
}

std::string CatalogEpoch::to_text() const {
  // `epoch N` / `member ID [addr]` / `doc S1,S2 NAME` — name last so it may
  // contain spaces; addresses never do (host:port).
  std::string out = "epoch " + std::to_string(epoch) + "\n";
  for (const SiteId member : members) {
    out += "member " + std::to_string(member);
    const auto it = addresses.find(member);
    if (it != addresses.end() && !it->second.empty()) out += " " + it->second;
    out += "\n";
  }
  for (const auto& [name, sites] : placement) {
    out += "doc ";
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(sites[i]);
    }
    out += " " + name + "\n";
  }
  return out;
}

util::Result<CatalogEpoch> CatalogEpoch::parse(const std::string& text) {
  CatalogEpoch result;
  bool saw_epoch = false;
  for (const std::string& raw : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw);
    if (line.empty()) continue;
    const auto space = line.find(' ');
    const std::string_view kind = line.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{}
                                        : line.substr(space + 1);
    if (kind == "epoch") {
      result.epoch = std::strtoull(std::string(rest).c_str(), nullptr, 10);
      saw_epoch = true;
    } else if (kind == "member") {
      const auto gap = rest.find(' ');
      const std::string id_text(rest.substr(0, gap));
      char* end = nullptr;
      const unsigned long id = std::strtoul(id_text.c_str(), &end, 10);
      if (end == id_text.c_str()) {
        return util::Status(util::Code::kInvalidArgument,
                            "catalog: bad member line '" + std::string(line) +
                                "'");
      }
      result.members.push_back(static_cast<SiteId>(id));
      if (gap != std::string_view::npos) {
        result.addresses[static_cast<SiteId>(id)] =
            std::string(util::trim(rest.substr(gap + 1)));
      }
    } else if (kind == "doc") {
      const auto gap = rest.find(' ');
      if (gap == std::string_view::npos) {
        return util::Status(util::Code::kInvalidArgument,
                            "catalog: bad doc line '" + std::string(line) +
                                "'");
      }
      std::vector<SiteId> sites;
      for (const std::string& piece :
           util::split(rest.substr(0, gap), ',')) {
        if (piece.empty()) continue;
        sites.push_back(
            static_cast<SiteId>(std::strtoul(piece.c_str(), nullptr, 10)));
      }
      const std::string name(util::trim(rest.substr(gap + 1)));
      if (name.empty() || sites.empty()) {
        return util::Status(util::Code::kInvalidArgument,
                            "catalog: bad doc line '" + std::string(line) +
                                "'");
      }
      std::sort(sites.begin(), sites.end());
      sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
      result.placement[name] = std::move(sites);
    } else {
      return util::Status(util::Code::kInvalidArgument,
                          "catalog: unknown line '" + std::string(line) + "'");
    }
  }
  if (!saw_epoch) {
    return util::Status(util::Code::kInvalidArgument,
                        "catalog: missing epoch line");
  }
  std::sort(result.members.begin(), result.members.end());
  result.members.erase(
      std::unique(result.members.begin(), result.members.end()),
      result.members.end());
  return result;
}

CatalogEpoch rebalance(const CatalogEpoch& current,
                       std::vector<SiteId> members,
                       const std::map<SiteId, std::string>& addresses,
                       PlacementPolicy policy, std::size_t replication) {
  CatalogEpoch next;
  next.epoch = current.epoch + 1;
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  next.members = std::move(members);
  for (const SiteId member : next.members) {
    const auto fresh = addresses.find(member);
    if (fresh != addresses.end()) {
      next.addresses[member] = fresh->second;
      continue;
    }
    const auto kept = current.addresses.find(member);
    if (kept != current.addresses.end()) next.addresses[member] = kept->second;
  }
  std::size_t index = 0;
  for (const auto& [name, sites] : current.placement) {
    (void)sites;
    next.placement[name] =
        assign_sites(policy, index++, name, next.members, replication);
  }
  return next;
}

MigrationPlan plan_migration(const CatalogEpoch& from, const CatalogEpoch& to) {
  MigrationPlan plan;
  for (const auto& [name, new_sites] : to.placement) {
    const std::vector<SiteId>& old_sites = from.sites_of(name);
    MigrationPlan::Move move;
    move.doc = name;
    move.sources = old_sites;
    for (const SiteId site : new_sites) {
      if (std::find(old_sites.begin(), old_sites.end(), site) ==
          old_sites.end()) {
        move.gains.push_back(site);
      }
    }
    for (const SiteId site : old_sites) {
      if (std::find(new_sites.begin(), new_sites.end(), site) ==
          new_sites.end()) {
        move.drops.push_back(site);
      }
    }
    if (!move.gains.empty() || !move.drops.empty()) {
      plan.moves.push_back(std::move(move));
    }
  }
  return plan;
}

}  // namespace dtx::placement
