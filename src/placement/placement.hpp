// Placement & membership: which sites host which documents, as a versioned
// value. A `CatalogEpoch` is an immutable snapshot of the cluster layout —
// member list (with transport addresses for real clusters), one hosting set
// per document, and a monotonically increasing epoch number. Epochs are the
// unit of catalog distribution (`CatalogUpdate` wire messages) and of
// consistency: coordinators stamp every remote request with the epoch they
// routed under, and participants reject mismatches with the retryable
// `AbortReason::kStaleCatalog`, so a transaction is never torn across a
// placement change.
//
// `PlacementPolicy` decides hosting sets. `kFixed` keeps the lowest member
// ids (stable, but a new site hosts nothing); `kRoundRobin` stripes
// documents across members by index; `kHashRing` places each document on
// the ring successors of its name hash, which minimises replica movement
// when members join or leave — the policy the migration protocol is built
// for.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "util/status.hpp"

namespace dtx::placement {

using net::SiteId;

enum class PlacementPolicy {
  kFixed,       ///< first `replication` members in id order
  kRoundRobin,  ///< stripe by document index across members
  kHashRing,    ///< ring successors of hash(document name)
};

const char* placement_policy_name(PlacementPolicy policy) noexcept;
util::Result<PlacementPolicy> parse_placement_policy(const std::string& text);

/// FNV-1a — the ring hash. Stable across platforms and runs.
std::uint64_t hash64(const std::string& text) noexcept;

/// Hosting set for one document: `replication` distinct members chosen by
/// `policy`. `replication == 0` (or >= member count) means full replication.
/// Members must be non-empty; the result is sorted.
std::vector<SiteId> assign_sites(PlacementPolicy policy,
                                 std::size_t doc_index,
                                 const std::string& doc_name,
                                 const std::vector<SiteId>& members,
                                 std::size_t replication);

/// One immutable version of the cluster layout.
struct CatalogEpoch {
  std::uint64_t epoch = 0;
  std::vector<SiteId> members;                  ///< sorted, unique
  std::map<SiteId, std::string> addresses;      ///< host:port; empty for sim
  std::map<std::string, std::vector<SiteId>> placement;

  /// Hosting sites of a document; a reference to an empty vector when
  /// unknown. Valid as long as this epoch object lives — hot paths hold a
  /// `shared_ptr<const CatalogEpoch>` view and never copy the vector.
  [[nodiscard]] const std::vector<SiteId>& sites_of(
      const std::string& name) const noexcept;

  [[nodiscard]] bool has_document(const std::string& name) const;
  [[nodiscard]] bool hosts(SiteId site, const std::string& name) const;
  [[nodiscard]] bool is_member(SiteId site) const;

  /// All registered document names, sorted (map order).
  [[nodiscard]] std::vector<std::string> documents() const;

  /// Documents hosted by one site, sorted.
  [[nodiscard]] std::vector<std::string> documents_at(SiteId site) const;

  /// Line-based text form — the wire payload of `CatalogUpdate` and the
  /// durable `~catalog` record. Round-trips through `parse`.
  [[nodiscard]] std::string to_text() const;
  static util::Result<CatalogEpoch> parse(const std::string& text);
};

/// The next epoch after a membership change: epoch+1, `members` replaces the
/// old member list, every document reassigned under `policy`/`replication`
/// (document index = rank of its sorted name, so assignment is stable).
/// Addresses carry over for surviving members; `addresses` adds/overrides
/// entries for new ones.
CatalogEpoch rebalance(const CatalogEpoch& current,
                       std::vector<SiteId> members,
                       const std::map<SiteId, std::string>& addresses,
                       PlacementPolicy policy, std::size_t replication);

/// Replica movement between two epochs, the migration work list.
struct MigrationPlan {
  struct Move {
    std::string doc;
    std::vector<SiteId> sources;  ///< hosts in `from` (ship from any)
    std::vector<SiteId> gains;    ///< hosts in `to` but not in `from`
    std::vector<SiteId> drops;    ///< hosts in `from` but not in `to`
  };
  std::vector<Move> moves;  ///< only documents whose hosting set changed
};

MigrationPlan plan_migration(const CatalogEpoch& from, const CatalogEpoch& to);

}  // namespace dtx::placement
