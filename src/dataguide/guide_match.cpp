#include "dataguide/guide_match.hpp"

#include <unordered_set>

namespace dtx::dataguide {

namespace {

using xpath::Axis;
using xpath::NodeTest;
using xpath::Predicate;
using xpath::PredicateKind;
using xpath::Step;

bool guide_node_matches_test(const GuideNode& node, const Step& step) {
  switch (step.test) {
    case NodeTest::kName:
      return node.label() == step.name;
    case NodeTest::kWildcard:
      return node.label().empty() || node.label()[0] != '@';
    case NodeTest::kText:
      return node.label() == kTextLabel;
    case NodeTest::kAttribute:
      return node.label() == "@" + step.name;
  }
  return false;
}

void collect_guide_candidates(GuideNode& context, const Step& step,
                              std::vector<GuideNode*>& out) {
  if (step.axis == Axis::kChild) {
    for (const auto& child : context.children()) {
      if (child->extent() > 0 && guide_node_matches_test(*child, step)) {
        out.push_back(child.get());
      }
    }
    return;
  }
  context.visit([&](const GuideNode& node) {
    if (&node != &context && node.extent() > 0 &&
        guide_node_matches_test(node, step)) {
      out.push_back(const_cast<GuideNode*>(&node));
    }
    return true;
  });
}

/// The condition a step's equality predicates impose on everything selected
/// at (and below) the step; empty when the step has none.
std::string step_condition(const Step& step) {
  std::string condition;
  for (const Predicate& predicate : step.predicates) {
    if (predicate.kind != PredicateKind::kEquals) continue;
    if (!condition.empty()) condition += '&';
    condition += predicate.path.to_string() + "=" + predicate.literal;
  }
  return condition;
}

/// Combines an inherited condition with a step's own (inner overrides do
/// not discard outer context — both restrict the instance set, so they
/// concatenate into one opaque condition key).
std::string combine(const std::string& outer, const std::string& inner) {
  if (outer.empty()) return inner;
  if (inner.empty()) return outer;
  return outer + "&" + inner;
}

std::vector<GuideTarget> walk_steps(
    const std::vector<Step>& steps, std::vector<GuideTarget> contexts,
    std::vector<GuideTarget>* predicate_targets) {
  for (const auto& step : steps) {
    const std::string condition = step_condition(step);
    std::vector<GuideTarget> next;
    std::unordered_set<const GuideNode*> seen;
    for (GuideTarget& context : contexts) {
      std::vector<GuideNode*> candidates;
      collect_guide_candidates(*context.node, step, candidates);
      const std::string inherited = combine(context.condition, condition);
      for (GuideNode* node : candidates) {
        if (seen.insert(node).second) {
          next.push_back(GuideTarget{node, inherited});
        }
      }
    }
    // Predicate paths: resolved from every candidate; conservative (no
    // value filtering). They contribute lock targets only, conditioned by
    // the step's own condition (a point predicate only reads the matching
    // instance's predicate nodes).
    if (predicate_targets != nullptr) {
      for (const auto& predicate : step.predicates) {
        if (predicate.kind == PredicateKind::kPosition) continue;
        for (GuideTarget& target : next) {
          std::vector<GuideTarget> reached = walk_steps(
              predicate.path.steps, {target}, predicate_targets);
          predicate_targets->insert(predicate_targets->end(), reached.begin(),
                                    reached.end());
        }
      }
    }
    contexts = std::move(next);
    if (contexts.empty()) break;
  }
  return contexts;
}

void dedupe(std::vector<GuideTarget>& targets) {
  std::unordered_set<std::string> seen;
  std::vector<GuideTarget> unique;
  unique.reserve(targets.size());
  for (GuideTarget& target : targets) {
    const std::string key =
        std::to_string(target.node->id()) + "|" + target.condition;
    if (seen.insert(key).second) unique.push_back(std::move(target));
  }
  targets = std::move(unique);
}

}  // namespace

MatchResult match(const xpath::Path& path, const DataGuide& guide) {
  MatchResult result;
  if (guide.empty() || path.empty()) return result;

  GuideNode* root = guide.root();
  const xpath::Step& first = path.steps.front();

  std::vector<GuideTarget> contexts;
  const std::string root_condition = step_condition(first);
  if (root->extent() > 0 && guide_node_matches_test(*root, first)) {
    contexts.push_back(GuideTarget{root, root_condition});
  }
  if (first.axis == Axis::kDescendant) {
    std::vector<GuideNode*> candidates;
    collect_guide_candidates(*root, first, candidates);
    for (GuideNode* node : candidates) {
      contexts.push_back(GuideTarget{node, root_condition});
    }
  }
  // Apply first-step predicates' paths against the selected contexts.
  for (const auto& predicate : first.predicates) {
    if (predicate.kind == xpath::PredicateKind::kPosition) continue;
    for (GuideTarget& context : contexts) {
      std::vector<GuideTarget> reached = walk_steps(
          predicate.path.steps, {context}, &result.predicate_targets);
      result.predicate_targets.insert(result.predicate_targets.end(),
                                      reached.begin(), reached.end());
    }
  }

  std::vector<xpath::Step> rest(path.steps.begin() + 1, path.steps.end());
  result.targets =
      walk_steps(rest, std::move(contexts), &result.predicate_targets);

  dedupe(result.targets);
  dedupe(result.predicate_targets);
  return result;
}

std::vector<GuideNode*> match_relative(const xpath::RelativePath& path,
                                       GuideNode& context) {
  std::vector<GuideTarget> matched =
      walk_steps(path.steps, {GuideTarget{&context, ""}}, nullptr);
  std::vector<GuideNode*> out;
  out.reserve(matched.size());
  for (const GuideTarget& target : matched) out.push_back(target.node);
  return out;
}

}  // namespace dtx::dataguide
