// Structural matching of XPath expressions against a DataGuide.
//
// XDGL acquires its locks on the DataGuide nodes an expression *may* touch.
// A DataGuide node summarizes every instance with that label path, so the
// match also extracts the *value condition* of each target: when the path
// reaches a node through an equality predicate (person[@id='4']), locks on
// that node — and on everything selected below it — only concern instances
// matching the literal. The lock table treats locks with different value
// conditions on the same guide node as compatible (logical locks), which is
// where XDGL's concurrency between point operations comes from. Steps
// without equality predicates yield unconditioned ("any instance") targets:
// scans and whole-subtree operations conflict conservatively.
#pragma once

#include <string>
#include <vector>

#include "dataguide/dataguide.hpp"
#include "xpath/ast.hpp"

namespace dtx::dataguide {

/// A guide node plus the value condition under which it is touched
/// (empty = any instance).
struct GuideTarget {
  GuideNode* node = nullptr;
  std::string condition;
};

struct MatchResult {
  /// Guide nodes selected by the path itself (XDGL's "target nodes").
  std::vector<GuideTarget> targets;
  /// Guide nodes reached by predicate paths along the way (XDGL locks these
  /// in shared-tree mode during queries and updates).
  std::vector<GuideTarget> predicate_targets;
};

/// Matches an absolute path against the guide. Zero-extent guide nodes are
/// skipped (they summarize no live data).
MatchResult match(const xpath::Path& path, const DataGuide& guide);

/// Matches a relative path from an explicit guide context node (conditions
/// are not tracked; used for guide navigation, not lock derivation).
std::vector<GuideNode*> match_relative(const xpath::RelativePath& path,
                                       GuideNode& context);

}  // namespace dtx::dataguide
