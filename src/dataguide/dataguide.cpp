#include "dataguide/dataguide.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace dtx::dataguide {

std::string GuideNode::label_path() const {
  std::vector<const GuideNode*> chain;
  for (const GuideNode* node = this; node != nullptr; node = node->parent_) {
    chain.push_back(node);
  }
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    path += '/';
    path += (*it)->label_;
  }
  return path;
}

GuideNode* GuideNode::child_labelled(std::string_view label) const {
  for (const auto& child : children_) {
    if (child->label_ == label) return child.get();
  }
  return nullptr;
}

std::size_t GuideNode::subtree_size() const {
  std::size_t total = 1;
  for (const auto& child : children_) total += child->subtree_size();
  return total;
}

std::unique_ptr<DataGuide> DataGuide::build(const xml::Document& document) {
  auto guide = std::make_unique<DataGuide>();
  if (document.has_root()) {
    guide->on_subtree_added(*document.root(), "");
  }
  return guide;
}

GuideNode* DataGuide::find(GuideNodeId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

GuideNode* DataGuide::find_path(std::string_view label_path) const {
  if (root_ == nullptr || label_path.empty() || label_path[0] != '/') {
    return nullptr;
  }
  std::vector<std::string> labels =
      util::split(label_path.substr(1), '/');
  if (labels.empty() || labels.front() != root_->label()) return nullptr;
  GuideNode* node = root_.get();
  for (std::size_t i = 1; i < labels.size(); ++i) {
    node = node->child_labelled(labels[i]);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::size_t DataGuide::node_count() const {
  return root_ == nullptr ? 0 : root_->subtree_size();
}

GuideNode* DataGuide::ensure_child(GuideNode* parent, std::string_view label) {
  if (parent == nullptr) {
    if (root_ == nullptr) {
      root_ = std::make_unique<GuideNode>(next_id_++, std::string(label),
                                          nullptr);
      by_id_[root_->id()] = root_.get();
    }
    assert(root_->label() == label &&
           "a document has a single root label path");
    return root_.get();
  }
  if (GuideNode* existing = parent->child_labelled(label)) return existing;
  auto child =
      std::make_unique<GuideNode>(next_id_++, std::string(label), parent);
  GuideNode* raw = child.get();
  by_id_[raw->id()] = raw;
  parent->children_.push_back(std::move(child));
  return raw;
}

void DataGuide::add_node_recursive(const xml::Node& node,
                                   GuideNode* parent_guide) {
  const std::string label =
      node.is_element() ? node.name() : std::string(kTextLabel);
  GuideNode* guide = ensure_child(parent_guide, label);
  ++guide->extent_;
  if (node.is_element()) {
    for (const auto& [attr_name, attr_value] : node.attributes()) {
      (void)attr_value;
      GuideNode* attr_guide = ensure_child(guide, "@" + attr_name);
      ++attr_guide->extent_;
    }
    for (const auto& child : node.children()) {
      add_node_recursive(*child, guide);
    }
  }
}

void DataGuide::remove_node_recursive(const xml::Node& node,
                                      GuideNode* guide) {
  assert(guide != nullptr && guide->extent_ > 0);
  --guide->extent_;
  if (node.is_element()) {
    for (const auto& [attr_name, attr_value] : node.attributes()) {
      (void)attr_value;
      GuideNode* attr_guide = guide->child_labelled("@" + attr_name);
      assert(attr_guide != nullptr && attr_guide->extent_ > 0);
      --attr_guide->extent_;
    }
    for (const auto& child : node.children()) {
      const std::string label =
          child->is_element() ? child->name() : std::string(kTextLabel);
      remove_node_recursive(*child, guide->child_labelled(label));
    }
  }
}

void DataGuide::on_subtree_added(const xml::Node& subtree_root,
                                 std::string_view parent_path) {
  GuideNode* parent_guide = nullptr;
  if (!parent_path.empty()) {
    parent_guide = find_path(parent_path);
    assert(parent_guide != nullptr && "parent path must exist in the guide");
  }
  add_node_recursive(subtree_root, parent_guide);
}

void DataGuide::on_subtree_removed(const xml::Node& subtree_root,
                                   std::string_view parent_path) {
  GuideNode* parent_guide = nullptr;
  if (!parent_path.empty()) {
    parent_guide = find_path(parent_path);
    assert(parent_guide != nullptr);
  }
  const std::string label = subtree_root.is_element()
                                ? subtree_root.name()
                                : std::string(kTextLabel);
  GuideNode* guide = parent_guide == nullptr
                         ? root_.get()
                         : parent_guide->child_labelled(label);
  remove_node_recursive(subtree_root, guide);
}

void DataGuide::on_subtree_renamed(const xml::Node& subtree_root,
                                   std::string_view parent_path,
                                   std::string_view old_label) {
  // The subtree's descendants carry their current (new) names, so removal
  // must happen under the *old* guide child while additions go under the
  // new one. Removal walks the subtree against the old child's structure;
  // descendants have unchanged labels, so only the top-level label differs.
  GuideNode* parent_guide = nullptr;
  if (!parent_path.empty()) {
    parent_guide = find_path(parent_path);
    assert(parent_guide != nullptr);
  }
  GuideNode* old_guide = parent_guide == nullptr
                             ? root_.get()
                             : parent_guide->child_labelled(old_label);
  assert(old_guide != nullptr);
  remove_node_recursive(subtree_root, old_guide);
  add_node_recursive(subtree_root, parent_guide);
}

GuideNode* DataGuide::ensure_path(const std::vector<std::string>& labels) {
  assert(!labels.empty());
  GuideNode* node = nullptr;
  for (const auto& label : labels) {
    node = ensure_child(node, label);
  }
  return node;
}

namespace {

/// True when the node or any descendant still summarizes live data.
bool has_live_extent(const GuideNode& node) {
  if (node.extent() > 0) return true;
  for (const auto& child : node.children()) {
    if (has_live_extent(*child)) return true;
  }
  return false;
}

bool nodes_equivalent(const GuideNode& a, const GuideNode& b) {
  if (a.label() != b.label() || a.extent() != b.extent()) return false;
  // Children may appear in different orders after incremental maintenance;
  // compare as label-keyed sets, ignoring zero-extent leftovers on either
  // side (rebuilds never create them; incremental removal keeps them).
  const auto live_children = [](const GuideNode& node) {
    std::vector<const GuideNode*> out;
    for (const auto& child : node.children()) {
      if (has_live_extent(*child)) out.push_back(child.get());
    }
    return out;
  };
  const auto a_children = live_children(a);
  const auto b_children = live_children(b);
  if (a_children.size() != b_children.size()) return false;
  for (const GuideNode* child_a : a_children) {
    const GuideNode* child_b = b.child_labelled(child_a->label());
    if (child_b == nullptr || !nodes_equivalent(*child_a, *child_b)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool DataGuide::equivalent(const DataGuide& other) const {
  if ((root_ == nullptr) != (other.root_ == nullptr)) return false;
  return root_ == nullptr || nodes_equivalent(*root_, *other.root_);
}

}  // namespace dtx::dataguide
