// Strong DataGuide (Goldman & Widom, VLDB'97): a summary tree with exactly
// one node per distinct label path of the document. XDGL (and therefore DTX)
// places its locks on DataGuide nodes instead of document nodes, which is
// what gives the protocol its small lock tables and path-level granularity
// (paper §2: "Because it uses an optimized structure to represent locks,
// XDGL is more efficient in managing the locks").
//
// Each guide node tracks the *extent* (number of live document nodes with
// that label path). Guide nodes are never physically removed while a guide
// is in use — lock tables hold guide-node ids — but zero-extent nodes are
// skipped by structural matching.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/document.hpp"

namespace dtx::dataguide {

using GuideNodeId = std::uint64_t;
inline constexpr GuideNodeId kInvalidGuideNodeId = 0;

/// Pseudo-labels for non-element document content.
inline constexpr std::string_view kTextLabel = "#text";

class GuideNode {
 public:
  GuideNode(GuideNodeId id, std::string label, GuideNode* parent)
      : id_(id), label_(std::move(label)), parent_(parent) {}

  GuideNode(const GuideNode&) = delete;
  GuideNode& operator=(const GuideNode&) = delete;

  [[nodiscard]] GuideNodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] GuideNode* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<GuideNode>>& children()
      const noexcept {
    return children_;
  }

  /// Number of live document nodes whose label path ends at this node.
  [[nodiscard]] std::size_t extent() const noexcept { return extent_; }

  /// "/site/people/person" style path of labels from the root.
  [[nodiscard]] std::string label_path() const;

  /// Child with this label, or nullptr. Attribute children use "@name".
  [[nodiscard]] GuideNode* child_labelled(std::string_view label) const;

  [[nodiscard]] std::size_t subtree_size() const;

  /// Pre-order visit; return false to prune descent.
  template <typename Visitor>
  void visit(Visitor&& visitor) const {
    if (!visitor(*this)) return;
    for (const auto& child : children_) child->visit(visitor);
  }

 private:
  friend class DataGuide;

  GuideNodeId id_;
  std::string label_;
  GuideNode* parent_;
  std::size_t extent_ = 0;
  std::vector<std::unique_ptr<GuideNode>> children_;
};

class DataGuide {
 public:
  DataGuide() = default;
  DataGuide(const DataGuide&) = delete;
  DataGuide& operator=(const DataGuide&) = delete;

  /// Builds the guide for a whole document.
  static std::unique_ptr<DataGuide> build(const xml::Document& document);

  [[nodiscard]] GuideNode* root() const noexcept { return root_.get(); }
  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }

  /// Lookup by id (lock tables store guide ids).
  [[nodiscard]] GuideNode* find(GuideNodeId id) const;

  /// Lookup by "/site/people/person" label path; nullptr when absent.
  [[nodiscard]] GuideNode* find_path(std::string_view label_path) const;

  /// Total number of guide nodes (including zero-extent ones).
  [[nodiscard]] std::size_t node_count() const;

  // --- incremental maintenance --------------------------------------------
  // The DTX data manager calls these after applying document updates so the
  // guide stays consistent without a rebuild. `parent_path` is the label
  // path of the subtree root's parent ("" for the document root).

  /// Registers an inserted document subtree (adds paths, bumps extents).
  void on_subtree_added(const xml::Node& subtree_root,
                        std::string_view parent_path);

  /// Unregisters a removed document subtree (drops extents; guide nodes are
  /// kept with extent zero).
  void on_subtree_removed(const xml::Node& subtree_root,
                          std::string_view parent_path);

  /// Rename = remove old paths + add new paths for the renamed subtree.
  void on_subtree_renamed(const xml::Node& subtree_root,
                          std::string_view parent_path,
                          std::string_view old_label);

  /// Ensures a path exists (used when locking insert targets that introduce
  /// a brand-new label path). Returns the final node. Labels beginning with
  /// '@' create attribute children.
  GuideNode* ensure_path(const std::vector<std::string>& labels);

  /// Structural equality with another guide (labels + extents), used by the
  /// property tests that check incremental maintenance against a rebuild.
  [[nodiscard]] bool equivalent(const DataGuide& other) const;

 private:
  GuideNode* ensure_child(GuideNode* parent, std::string_view label);
  void add_node_recursive(const xml::Node& node, GuideNode* parent_guide);
  void remove_node_recursive(const xml::Node& node, GuideNode* guide);

  std::unique_ptr<GuideNode> root_;
  GuideNodeId next_id_ = 1;
  std::unordered_map<GuideNodeId, GuideNode*> by_id_;
};

}  // namespace dtx::dataguide
