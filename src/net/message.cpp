#include "net/message.hpp"

#include "net/codec.hpp"

namespace dtx::net {

namespace {

struct NameVisitor {
  const char* operator()(const ExecuteOperation&) const { return "execute"; }
  const char* operator()(const OperationResult&) const { return "result"; }
  const char* operator()(const UndoOperation&) const { return "undo-op"; }
  const char* operator()(const CommitRequest&) const { return "commit"; }
  const char* operator()(const CommitAck&) const { return "commit-ack"; }
  const char* operator()(const AbortRequest&) const { return "abort"; }
  const char* operator()(const AbortAck&) const { return "abort-ack"; }
  const char* operator()(const FailNotice&) const { return "fail"; }
  const char* operator()(const WfgRequest&) const { return "wfg-request"; }
  const char* operator()(const WfgReply&) const { return "wfg-reply"; }
  const char* operator()(const VictimAbort&) const { return "victim-abort"; }
  const char* operator()(const WakeTxn&) const { return "wake"; }
  const char* operator()(const TxnStatusRequest&) const {
    return "txn-status-request";
  }
  const char* operator()(const TxnStatusReply&) const {
    return "txn-status-reply";
  }
  const char* operator()(const SnapshotReadRequest&) const {
    return "snapshot-read";
  }
  const char* operator()(const SnapshotReadReply&) const {
    return "snapshot-reply";
  }
  const char* operator()(const Hello&) const { return "hello"; }
  const char* operator()(const ClientSubmit&) const { return "client-submit"; }
  const char* operator()(const ClientReply&) const { return "client-reply"; }
  const char* operator()(const RecoveryPullRequest&) const {
    return "recovery-pull";
  }
  const char* operator()(const RecoveryPullReply&) const {
    return "recovery-pull-reply";
  }
  const char* operator()(const CatalogUpdate&) const {
    return "catalog-update";
  }
  const char* operator()(const CatalogAck&) const { return "catalog-ack"; }
  const char* operator()(const JoinRequest&) const { return "join-request"; }
  const char* operator()(const JoinReply&) const { return "join-reply"; }
  const char* operator()(const MigrateDoc&) const { return "migrate-doc"; }
  const char* operator()(const MigrateAck&) const { return "migrate-ack"; }
  const char* operator()(const DropDoc&) const { return "drop-doc"; }
};

}  // namespace

const char* txn_outcome_name(TxnOutcome outcome) noexcept {
  switch (outcome) {
    case TxnOutcome::kUnknown: return "unknown";
    case TxnOutcome::kActive: return "active";
    case TxnOutcome::kCommitted: return "committed";
    case TxnOutcome::kAborted: return "aborted";
  }
  return "unknown";
}

const char* payload_name(const Payload& payload) noexcept {
  return std::visit(NameVisitor{}, payload);
}

std::size_t payload_wire_size(const Payload& payload) noexcept {
  return codec::encoded_payload_size(payload);
}

}  // namespace dtx::net
