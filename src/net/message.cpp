#include "net/message.hpp"

namespace dtx::net {

namespace {

struct NameVisitor {
  const char* operator()(const ExecuteOperation&) const { return "execute"; }
  const char* operator()(const OperationResult&) const { return "result"; }
  const char* operator()(const UndoOperation&) const { return "undo-op"; }
  const char* operator()(const CommitRequest&) const { return "commit"; }
  const char* operator()(const CommitAck&) const { return "commit-ack"; }
  const char* operator()(const AbortRequest&) const { return "abort"; }
  const char* operator()(const AbortAck&) const { return "abort-ack"; }
  const char* operator()(const FailNotice&) const { return "fail"; }
  const char* operator()(const WfgRequest&) const { return "wfg-request"; }
  const char* operator()(const WfgReply&) const { return "wfg-reply"; }
  const char* operator()(const VictimAbort&) const { return "victim-abort"; }
  const char* operator()(const WakeTxn&) const { return "wake"; }
};

constexpr std::size_t kHeaderBytes = 32;  // ids, flags, framing

struct SizeVisitor {
  std::size_t operator()(const ExecuteOperation& m) const {
    return kHeaderBytes + m.doc.size() + m.op_text.size();
  }
  std::size_t operator()(const OperationResult& m) const {
    std::size_t total = kHeaderBytes + m.error.size();
    for (const auto& row : m.rows) total += row.size() + 4;
    return total;
  }
  std::size_t operator()(const WfgReply& m) const {
    return kHeaderBytes + m.edges.size() * 16;
  }
  template <typename T>
  std::size_t operator()(const T&) const {
    return kHeaderBytes;
  }
};

}  // namespace

const char* payload_name(const Payload& payload) noexcept {
  return std::visit(NameVisitor{}, payload);
}

std::size_t payload_wire_size(const Payload& payload) noexcept {
  return std::visit(SizeVisitor{}, payload);
}

}  // namespace dtx::net
