#include "net/message.hpp"

namespace dtx::net {

namespace {

struct NameVisitor {
  const char* operator()(const ExecuteOperation&) const { return "execute"; }
  const char* operator()(const OperationResult&) const { return "result"; }
  const char* operator()(const UndoOperation&) const { return "undo-op"; }
  const char* operator()(const CommitRequest&) const { return "commit"; }
  const char* operator()(const CommitAck&) const { return "commit-ack"; }
  const char* operator()(const AbortRequest&) const { return "abort"; }
  const char* operator()(const AbortAck&) const { return "abort-ack"; }
  const char* operator()(const FailNotice&) const { return "fail"; }
  const char* operator()(const WfgRequest&) const { return "wfg-request"; }
  const char* operator()(const WfgReply&) const { return "wfg-reply"; }
  const char* operator()(const VictimAbort&) const { return "victim-abort"; }
  const char* operator()(const WakeTxn&) const { return "wake"; }
  const char* operator()(const TxnStatusRequest&) const {
    return "txn-status-request";
  }
  const char* operator()(const TxnStatusReply&) const {
    return "txn-status-reply";
  }
  const char* operator()(const SnapshotReadRequest&) const {
    return "snapshot-read";
  }
  const char* operator()(const SnapshotReadReply&) const {
    return "snapshot-reply";
  }
};

constexpr std::size_t kHeaderBytes = 32;  // ids, flags, framing

// --- structural wire-size model of the typed operation payload --------------
// The paper ships operations as text; the typed wire carries the parsed
// form, so the bandwidth model charges a compact binary encoding: per-node
// framing tags plus the embedded strings (names, literals, fragments).

std::size_t wire_size_steps(const std::vector<xpath::Step>& steps);

std::size_t wire_size(const xpath::Step& step) {
  std::size_t total = 2 + step.name.size();  // axis + node-test tags, name
  for (const xpath::Predicate& predicate : step.predicates) {
    total += 2 + predicate.literal.size() +
             wire_size_steps(predicate.path.steps);
  }
  return total;
}

std::size_t wire_size_steps(const std::vector<xpath::Step>& steps) {
  std::size_t total = 2;  // step count
  for (const xpath::Step& step : steps) total += wire_size(step);
  return total;
}

std::size_t wire_size(const xpath::Path& path) {
  return wire_size_steps(path.steps);
}

std::size_t wire_size(const xupdate::UpdateOp& op) {
  return 2 /* kind + position tags */ + wire_size(op.target) +
         op.content_xml.size() + op.new_text.size() +
         wire_size(op.destination);
}

std::size_t wire_size(const txn::Operation& op) {
  std::size_t total = 1 /* type tag */ + op.doc.size();
  if (op.is_update()) {
    total += wire_size(op.update);
  } else {
    total += wire_size(op.query);
  }
  return total;
}

struct SizeVisitor {
  std::size_t operator()(const ExecuteOperation& m) const {
    return kHeaderBytes + wire_size(m.op);
  }
  std::size_t operator()(const OperationResult& m) const {
    std::size_t total = kHeaderBytes + m.error.size();
    for (const auto& row : m.rows) total += row.size() + 4;
    return total;
  }
  std::size_t operator()(const WfgReply& m) const {
    return kHeaderBytes + m.edges.size() * 16;
  }
  std::size_t operator()(const SnapshotReadRequest& m) const {
    std::size_t total = kHeaderBytes + m.op_indices.size() * 4;
    for (const txn::Operation& op : m.ops) total += wire_size(op);
    return total;
  }
  std::size_t operator()(const SnapshotReadReply& m) const {
    std::size_t total =
        kHeaderBytes + m.error.size() + m.op_indices.size() * 4;
    for (const auto& rows : m.rows) {
      for (const auto& row : rows) total += row.size() + 4;
    }
    return total;
  }
  template <typename T>
  std::size_t operator()(const T&) const {
    return kHeaderBytes;
  }
};

}  // namespace

const char* txn_outcome_name(TxnOutcome outcome) noexcept {
  switch (outcome) {
    case TxnOutcome::kUnknown: return "unknown";
    case TxnOutcome::kActive: return "active";
    case TxnOutcome::kCommitted: return "committed";
    case TxnOutcome::kAborted: return "aborted";
  }
  return "unknown";
}

const char* payload_name(const Payload& payload) noexcept {
  return std::visit(NameVisitor{}, payload);
}

std::size_t payload_wire_size(const Payload& payload) noexcept {
  return std::visit(SizeVisitor{}, payload);
}

}  // namespace dtx::net
