// Message vocabulary between DTX schedulers. In the paper the instances talk
// over a LAN; here the same conversations run over net::SimNetwork (see
// DESIGN.md §2 for the substitution rationale). Operations travel as a
// *typed* structure (txn::Operation: document name + parsed XPath / update
// AST) and are re-evaluated at each participant — the receiving site
// resolves the operation through its plan cache instead of re-parsing text.
// Node ids still never cross the wire (the payload is label paths and
// literals only), which is what lets replicas keep independent id spaces.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "lock/lock_table.hpp"
#include "txn/abort_reason.hpp"
#include "txn/operation.hpp"
#include "wfg/wait_for_graph.hpp"

namespace dtx::net {

using SiteId = std::uint32_t;
using lock::TxnId;

/// Coordinator -> participant: execute one operation of a distributed
/// transaction (Alg. 1 l. 13).
struct ExecuteOperation {
  TxnId txn = 0;
  std::uint32_t op_index = 0;
  std::uint32_t attempt = 0;  ///< retry counter (wait mode re-execution)
  SiteId coordinator = 0;
  /// Catalog epoch the coordinator routed under; a participant on a
  /// different epoch rejects with the retryable AbortReason::kStaleCatalog.
  std::uint64_t epoch = 0;
  /// Typed operation payload (target document + parsed query / update).
  /// Contains no node ids — only label paths and literals.
  txn::Operation op;
};

/// Participant -> coordinator: outcome of a remote operation (Alg. 2 l. 13).
struct OperationResult {
  TxnId txn = 0;
  std::uint32_t op_index = 0;
  std::uint32_t attempt = 0;
  bool executed = false;
  bool lock_conflict = false;  ///< set_adquire_locking(false) in the paper
  bool failed = false;
  bool deadlock = false;       ///< local cycle detected while locking
  std::vector<std::string> rows;  ///< query results (string values)
  /// Failure taxonomy + detail when `failed` — lets the coordinator report
  /// a typed abort reason to the client instead of a generic string.
  txn::AbortReason reason = txn::AbortReason::kNone;
  std::string error;
};

/// Coordinator -> participant: undo one operation's effects (Alg. 1 l. 16 —
/// the operation failed to lock elsewhere, so sites that executed it must
/// roll it back while the transaction waits).
struct UndoOperation {
  TxnId txn = 0;
  std::uint32_t op_index = 0;
};

/// Coordinator -> participant: consolidate the transaction (Alg. 5 l. 4).
struct CommitRequest {
  TxnId txn = 0;
};

struct CommitAck {
  TxnId txn = 0;
  bool ok = false;
};

/// Coordinator -> participant: cancel the transaction (Alg. 6 l. 4).
struct AbortRequest {
  TxnId txn = 0;
};

struct AbortAck {
  TxnId txn = 0;
  bool ok = false;
};

/// Coordinator -> participant: the abort itself failed somewhere; mark the
/// transaction failed (Alg. 6 l. 7).
struct FailNotice {
  TxnId txn = 0;
};

/// Detector -> site: send me your wait-for graph (Alg. 4 l. 4).
struct WfgRequest {
  std::uint64_t probe = 0;
  SiteId requester = 0;
};

struct WfgReply {
  std::uint64_t probe = 0;
  std::vector<wfg::Edge> edges;
};

/// Detector -> victim's coordinator: abort this transaction (Alg. 4 l. 8).
struct VictimAbort {
  TxnId txn = 0;
};

/// Participant -> coordinator: a transaction your waiter was blocked on has
/// released its locks; retry (paper §2.2: "those that entered wait mode ...
/// start executing again").
struct WakeTxn {
  TxnId txn = 0;
};

/// Coordinator-known outcome of a transaction, as answered to a status
/// query. kUnknown means the coordinator has no record — either it never
/// saw the transaction or it crashed and lost its state; under presumed
/// abort the querier treats kUnknown as aborted.
enum class TxnOutcome : std::uint8_t {
  kUnknown = 0,
  kActive,     ///< still running at the coordinator
  kCommitted,
  kAborted,    ///< aborted or failed
};

const char* txn_outcome_name(TxnOutcome outcome) noexcept;

/// Participant -> coordinator: presumed-abort recovery probe. Sent when a
/// transaction holding locks here has gone silent past the orphan timeout —
/// its coordinator may have crashed or be partitioned away.
struct TxnStatusRequest {
  TxnId txn = 0;
  SiteId requester = 0;
};

/// Coordinator -> participant: the outcome from the live transaction table
/// or the recent-outcome cache (kUnknown after a coordinator restart).
struct TxnStatusReply {
  TxnId txn = 0;
  TxnOutcome outcome = TxnOutcome::kUnknown;
};

/// Coordinator -> serving site: evaluate a read-only transaction's queries
/// against that site's versioned snapshots (the MVCC read path — zero
/// locks, no 2PC; dtx/snapshot_store.hpp). One request carries every
/// operation the site serves for the transaction; the site captures one
/// consistent cut over their documents and answers with one reply.
struct SnapshotReadRequest {
  TxnId txn = 0;
  SiteId coordinator = 0;
  std::uint64_t epoch = 0;  ///< routing epoch (see ExecuteOperation::epoch)
  std::vector<std::uint32_t> op_indices;  ///< positions in the transaction
  std::vector<txn::Operation> ops;        ///< parallel to op_indices
};

/// Serving site -> coordinator: the snapshot-read rows (parallel to the
/// request's op_indices), or a typed failure.
struct SnapshotReadReply {
  TxnId txn = 0;
  bool ok = false;
  txn::AbortReason reason = txn::AbortReason::kNone;
  std::string error;
  std::vector<std::uint32_t> op_indices;
  std::vector<std::vector<std::string>> rows;
};

/// Transport handshake: the first frame on every TCP connection, in both
/// directions, identifying the sender endpoint (a site id, or a client id
/// at/above kClientIdBase — see net/network.hpp). TcpNetwork consumes it
/// internally to bind the connection to its peer; it never reaches a
/// mailbox. SimNetwork endpoints are pre-registered, so it is never sent
/// there.
struct Hello {
  SiteId id = 0;
  std::uint32_t protocol = 0;  ///< codec::kProtocolVersion of the sender
};

/// Remote client -> site (the Listener, paper Fig. 1): submit one
/// transaction for coordination. `seq` is the client's correlation id;
/// operations arrive typed, exactly like Cluster::submit.
struct ClientSubmit {
  std::uint64_t seq = 0;
  std::vector<txn::Operation> ops;
};

/// Site -> remote client: the terminal result of a submitted transaction
/// (a flattened txn::TxnResult — `state` and `reason` carry the
/// txn::TxnState / txn::AbortReason values as bytes; TxnResult itself
/// lives above the wire layer).
struct ClientReply {
  std::uint64_t seq = 0;
  bool accepted = false;  ///< false: rejected at submission (see detail)
  TxnId txn = 0;
  std::uint8_t state = 0;   ///< txn::TxnState
  std::uint8_t reason = 0;  ///< txn::AbortReason
  bool deadlock_victim = false;
  std::uint32_t wait_episodes = 0;
  double response_ms = 0.0;
  std::string detail;
  std::vector<std::vector<std::string>> rows;
};

/// Restarting site -> live replica: ship me your durable state of `doc`
/// (the network form of the recovery sync Cluster::restart_site performs
/// by reading peer stores directly — dtx/recovery.hpp).
struct RecoveryPullRequest {
  std::string doc;
  SiteId requester = 0;
};

/// Live replica -> restarting site: the resolved durable document —
/// checkpoint snapshot bytes plus the repaired log (marker + record tail),
/// exactly what wal::read_durable_doc resolves locally. ok=false when the
/// document is not hosted here or no stable read was possible.
struct RecoveryPullReply {
  std::string doc;
  bool ok = false;
  std::uint64_t version = 0;  ///< durable commit version of the shipped state
  std::string snapshot;
  std::string log;
};

/// Admin / seed -> member: install this catalog epoch (placement &
/// membership — src/placement/placement.hpp). `catalog` is the epoch's
/// line-based text form (CatalogEpoch::to_text). The receiver installs it
/// immediately — fencing new old-epoch requests — but withholds its
/// CatalogAck until every transaction it started or participates in under
/// an older epoch has terminated (the drain), so the sender knows when the
/// old routing generation is fully quiesced.
struct CatalogUpdate {
  std::uint64_t epoch = 0;
  std::string catalog;
  SiteId admin = 0;  ///< where to send the drained CatalogAck
};

/// Member -> admin: `epoch` is installed here and older-epoch transactions
/// have drained.
struct CatalogAck {
  std::uint64_t epoch = 0;
  SiteId site = 0;
};

/// Joining daemon -> seed member: admit me. `address` is the joiner's
/// listen endpoint, distributed to every member through the next epoch's
/// address book (dtxd --join).
struct JoinRequest {
  SiteId site = 0;
  std::string address;
};

/// Seed -> joiner: the new catalog (sent only after every old member acked
/// the flip, i.e. the pre-join epoch drained). ok=false carries a reason.
struct JoinReply {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::string catalog;
  std::string error;
};

/// Migration source -> gaining site: adopt this durable document state
/// (checkpoint snapshot + repaired log, as RecoveryPullReply ships it).
/// Idempotent: re-delivery with an equal-or-older version is a no-op ack,
/// which is what makes a kill -9 mid-migration restartable.
struct MigrateDoc {
  std::string doc;
  std::uint64_t epoch = 0;    ///< epoch that rehomed the document
  std::uint64_t version = 0;  ///< durable commit version of the shipped state
  std::string snapshot;
  std::string log;
};

/// Gaining site -> source: the document is durable here (or was already).
struct MigrateAck {
  std::string doc;
  SiteId site = 0;
  bool ok = false;
  std::uint64_t version = 0;
};

/// Admin -> former host: the hosting set of `epoch` no longer includes you
/// and every gaining replica is durable — drop your replica.
struct DropDoc {
  std::string doc;
  std::uint64_t epoch = 0;
};

using Payload =
    std::variant<ExecuteOperation, OperationResult, UndoOperation,
                 CommitRequest, CommitAck, AbortRequest, AbortAck, FailNotice,
                 WfgRequest, WfgReply, VictimAbort, WakeTxn, TxnStatusRequest,
                 TxnStatusReply, SnapshotReadRequest, SnapshotReadReply,
                 Hello, ClientSubmit, ClientReply, RecoveryPullRequest,
                 RecoveryPullReply, CatalogUpdate, CatalogAck, JoinRequest,
                 JoinReply, MigrateDoc, MigrateAck, DropDoc>;

struct Message {
  SiteId from = 0;
  SiteId to = 0;
  Payload payload;
};

/// Payload type name for logging / network statistics.
const char* payload_name(const Payload& payload) noexcept;

/// Exact wire size in bytes: the length of the frame the binary codec
/// (net/codec.hpp) emits for this payload. One source of truth — the
/// SimNetwork bandwidth model charges exactly what TcpNetwork transmits.
std::size_t payload_wire_size(const Payload& payload) noexcept;

}  // namespace dtx::net
