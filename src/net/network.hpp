// The transport abstraction of the DTX engine. Every scheduler component
// (Site dispatcher, Coordinator, Participant, deadlock detector) talks to a
// net::Network: register a mailbox, send messages, observe counters. Two
// substrates implement the contract:
//
//   * net::SimNetwork  (sim_network.hpp) — the deterministic in-process
//     stand-in for the paper's LAN: latency/bandwidth model, composable
//     fault injection. The default for tests, benches and chaos soaks.
//   * net::TcpNetwork  (tcp_network.hpp) — the real thing: an epoll event
//     loop over non-blocking TCP connections speaking the binary codec
//     (codec.hpp). What `dtxd` daemons and remote clients run on.
//
// Endpoint ids share one 32-bit space: sites occupy the low range (they
// also index the catalog and the transaction-id site bits), while remote
// *clients* — connections that submit transactions but host no replicas —
// identify with ids at or above kClientIdBase. Engine fan-outs (deadlock
// probes, commit broadcasts) must never target client ids; is_client_id()
// is the filter.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "net/message.hpp"
#include "util/sync.hpp"

namespace dtx::net {

/// First endpoint id of the client range. Everything below is a site.
inline constexpr SiteId kClientIdBase = 0x8000'0000u;

[[nodiscard]] inline constexpr bool is_client_id(SiteId id) noexcept {
  return id >= kClientIdBase;
}

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;
};

/// Per-endpoint delivery queue. The receiving site's dispatcher blocks on
/// pop(); senders (the network substrate) push with a delivery timestamp —
/// SimNetwork stamps its latency/bandwidth model, TcpNetwork stamps now().
class Mailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Enqueues a message due at `deliver_at`.
  void push(Message message, Clock::time_point deliver_at);

  /// Blocks until a message is deliverable or `timeout` elapses.
  std::optional<Message> pop(std::chrono::microseconds timeout);

  /// Non-blocking variant.
  std::optional<Message> try_pop();

  /// Wakes all blocked poppers (shutdown).
  void interrupt();

  /// Drops every queued message and clears the interrupted flag — a site
  /// restart begins with an empty, serviceable mailbox (a real crash loses
  /// the socket buffers with the process).
  void reset();

  [[nodiscard]] std::size_t pending() const;

 private:
  struct Timed {
    Clock::time_point deliver_at;
    std::uint64_t sequence;  // tie-break keeps per-link FIFO
    Message message;
  };
  struct Later {
    bool operator()(const Timed& a, const Timed& b) const {
      return a.deliver_at != b.deliver_at ? a.deliver_at > b.deliver_at
                                          : a.sequence > b.sequence;
    }
  };

  mutable sync::Mutex mutex_{sync::LockRank::kMailbox};
  sync::CondVar available_;
  std::priority_queue<Timed, std::vector<Timed>, Later> queue_
      DTX_GUARDED_BY(mutex_);
  std::uint64_t next_sequence_ DTX_GUARDED_BY(mutex_) = 0;
  bool interrupted_ DTX_GUARDED_BY(mutex_) = false;
};

/// The substrate contract. Implementations are internally synchronized:
/// send() and register_site() may be called from any engine thread.
class Network {
 public:
  virtual ~Network() = default;

  /// Registers a local endpoint and returns its mailbox (stable address;
  /// idempotent — re-registering returns the same mailbox).
  virtual Mailbox& register_site(SiteId site) = 0;

  /// Every *site* endpoint this substrate knows how to reach, local ones
  /// included (the deadlock detector's fan-out set). Client endpoints are
  /// never listed.
  [[nodiscard]] virtual std::vector<SiteId> sites() const = 0;

  /// Sends a message toward `message.to`. Fire-and-forget: delivery may
  /// fail silently (faults, a dead connection) — the engine's timeout and
  /// recovery paths own that case.
  virtual void send(Message message) = 0;

  /// Simulated-crash hook: while down, a site's traffic is discarded in
  /// both directions. Only SimNetwork implements it (chaos drives real
  /// processes with kill -9 instead); the default is a no-op.
  virtual void set_site_down(SiteId site, bool down);

  /// Membership hook: makes `site` reachable at `address` from now on
  /// (a joined peer). TcpNetwork grows its address book and starts
  /// dialing; SimNetwork needs nothing — registration creates mailboxes —
  /// so the default is a no-op. Idempotent.
  virtual void add_peer(SiteId site, const std::string& address);

  [[nodiscard]] virtual NetworkStats stats() const = 0;

  /// Wakes every blocked receiver (shutdown).
  virtual void interrupt_all() = 0;
};

inline void Network::set_site_down(SiteId /*site*/, bool /*down*/) {}

inline void Network::add_peer(SiteId /*site*/, const std::string& /*address*/) {
}

}  // namespace dtx::net
