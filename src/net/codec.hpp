// Binary wire codec: the serialization layer under TcpNetwork and the
// authoritative wire-size model of SimNetwork.
//
// Frame layout (all integers little-endian):
//
//   u32 magic     "DTX1" (0x31585444) — stream desync detector
//   u32 length    byte count of `body` (bounded by kMaxFrameBytes)
//   u64 checksum  FNV-1a 64 of `body` (the WAL's framing idiom, wal.hpp)
//   body:
//     u32 from | u32 to | u8 tag | payload
//
// `tag` is the payload's position in net::Payload plus one; unknown tags,
// truncated bodies, trailing bytes and checksum mismatches all reject the
// frame. Strings are u32-length-prefixed; vectors are u32-count-prefixed;
// bools are exactly 0 or 1 (anything else rejects — keeps decode(encode(x))
// re-encodable byte-exactly). Typed operations (txn::Operation) travel as
// their canonical text — the same round-trippable form the WAL logs — and
// are re-parsed on decode, so a frame that decodes always carries a
// well-formed operation and node ids still never cross the wire.
//
// Decoding a TCP byte stream goes through FrameReader: feed() appended
// bytes, next() yields complete messages. A corrupt frame poisons the
// reader (framing is lost — the connection must be dropped), which is
// exactly how TcpNetwork treats it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/message.hpp"
#include "util/status.hpp"

namespace dtx::net::codec {

inline constexpr std::uint32_t kMagic = 0x31585444u;  // "DTX1"
/// Bumped on any incompatible frame change; carried in the Hello handshake.
/// v2: ExecuteOperation / SnapshotReadRequest carry the catalog epoch, plus
/// the placement & membership payloads (CatalogUpdate .. DropDoc).
inline constexpr std::uint32_t kProtocolVersion = 2;
/// Number of payload tags the codec knows (tags run 1..kPayloadTagCount).
/// net_test keeps a hand-written tag-name list asserted against this, so a
/// new Payload alternative without codec + corpus coverage fails the suite.
inline constexpr std::size_t kPayloadTagCount = std::variant_size_v<Payload>;
/// Upper bound on one frame's body — a stream whose length field exceeds
/// this is corrupt (or hostile), not merely large.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Appends one encoded frame for `message` to `out`.
void encode(const Message& message, std::string& out);

[[nodiscard]] std::string encode(const Message& message);

/// Decodes exactly one frame (header + body). Rejects truncated input,
/// checksum mismatches, unknown tags, malformed payloads and trailing
/// bytes after the frame.
[[nodiscard]] util::Result<Message> decode(std::string_view frame);

/// Exact encoded frame size of a payload (from/to contribute a fixed 8
/// bytes regardless of value). This is net::payload_wire_size's backend.
[[nodiscard]] std::size_t encoded_payload_size(const Payload& payload);

/// Incremental frame extraction over a TCP byte stream.
class FrameReader {
 public:
  /// Appends raw bytes received from the stream.
  void feed(std::string_view bytes);

  /// One decoded message, std::nullopt when the buffer holds no complete
  /// frame yet, or an error when the stream is corrupt. After an error the
  /// reader stays poisoned — framing is unrecoverable; drop the connection.
  [[nodiscard]] util::Result<std::optional<Message>> next();

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - offset_;
  }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  std::string buffer_;
  std::size_t offset_ = 0;
  bool poisoned_ = false;
};

}  // namespace dtx::net::codec
