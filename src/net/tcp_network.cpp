#include "net/tcp_network.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/codec.hpp"
#include "util/log.hpp"

namespace dtx::net {

using util::Code;
using util::Status;

namespace {

using Clock = std::chrono::steady_clock;

Status errno_status(const char* what) {
  return Status(Code::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

/// "host:port" -> sockaddr_in (IPv4; `host` numeric or resolvable).
Status parse_hostport(const std::string& address, sockaddr_in& out) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 == address.size()) {
    return Status(Code::kInvalidArgument,
                  "address '" + address + "' is not host:port");
  }
  const std::string host = address.substr(0, colon);
  const std::string port = address.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &found);
  if (rc != 0 || found == nullptr) {
    return Status(Code::kInvalidArgument, "cannot resolve '" + address +
                                              "': " + ::gai_strerror(rc));
  }
  std::memcpy(&out, found->ai_addr, sizeof(sockaddr_in));
  ::freeaddrinfo(found);
  return Status::ok();
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// One TCP connection, dialed or accepted. Owned by conns_ (keyed by fd);
/// routed to by dialed_/accepted_ once bound to a peer.
struct TcpNetwork::Conn {
  int fd = -1;
  bool dialed = false;
  bool connecting = false;      ///< non-blocking connect() in flight
  bool hello_received = false;  ///< peer identified; frames may route
  SiteId peer = 0;              ///< dialed: target upfront; accepted: Hello
  codec::FrameReader reader;
  std::string out;              ///< encoded frames awaiting the socket
  std::size_t out_offset = 0;
  std::uint32_t interest = 0;   ///< epoll events currently armed
};

TcpNetwork::TcpNetwork(SiteId local, TcpOptions options)
    : local_(local), options_(std::move(options)), peers_(options_.peers) {}

TcpNetwork::~TcpNetwork() {
  if (running_.exchange(false)) {
    wake();
    thread_.join();
  }
  sync::MutexLock lock(mutex_);
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status TcpNetwork::start() {
  sync::MutexLock lock(mutex_);
  if (started_) return Status::ok();

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return errno_status("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return errno_status("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (!options_.listen.empty()) {
    sockaddr_in addr{};
    Status parsed = parse_hostport(options_.listen, addr);
    if (!parsed.ok()) return parsed;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (listen_fd_ < 0) return errno_status("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return errno_status("bind");
    }
    if (::listen(listen_fd_, 64) != 0) return errno_status("listen");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    listen_port_ = ntohs(bound.sin_port);
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }

  const auto now = Clock::now();
  for (const auto& [peer, address] : peers_) {
    (void)address;
    if (peer == local_) continue;  // never dial self
    dial_state_[peer] = DialState{options_.reconnect_min, now, false};
  }

  started_ = true;
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
  return Status::ok();
}

std::uint16_t TcpNetwork::listen_port() const {
  sync::MutexLock lock(mutex_);
  return listen_port_;
}

void TcpNetwork::add_peer(SiteId site, const std::string& address) {
  bool need_wake = false;
  {
    sync::MutexLock lock(mutex_);
    auto [it, inserted] = peers_.emplace(site, address);
    if (!inserted) it->second = address;  // rejoin with a new endpoint
    if (site != local_ && started_ && dial_state_.count(site) == 0) {
      dial_state_[site] = DialState{options_.reconnect_min, Clock::now(),
                                    false};
      need_wake = true;
    }
  }
  if (need_wake) wake();
}

Mailbox& TcpNetwork::register_site(SiteId site) {
  sync::MutexLock lock(mutex_);
  auto& slot = mailboxes_[site];
  if (slot == nullptr) slot = std::make_unique<Mailbox>();
  return *slot;
}

std::vector<SiteId> TcpNetwork::sites() const {
  sync::MutexLock lock(mutex_);
  std::vector<SiteId> out;
  for (const auto& [site, mailbox] : mailboxes_) {
    (void)mailbox;
    if (!is_client_id(site)) out.push_back(site);
  }
  for (const auto& [peer, address] : peers_) {
    (void)address;
    if (!is_client_id(peer)) out.push_back(peer);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void TcpNetwork::send(Message message) {
  bool need_wake = false;
  {
    sync::MutexLock lock(mutex_);
    // Local endpoints short-circuit the sockets entirely (a site's
    // coordinator messaging its own participant).
    const auto local = mailboxes_.find(message.to);
    if (local != mailboxes_.end()) {
      const std::size_t bytes = codec::encoded_payload_size(message.payload);
      ++stats_.messages_sent;
      stats_.bytes_sent += bytes;
      local->second->push(std::move(message), Mailbox::Clock::now());
      return;
    }

    int fd = -1;
    const auto dialed = dialed_.find(message.to);
    if (dialed != dialed_.end()) {
      fd = dialed->second;
    } else {
      const auto accepted = accepted_.find(message.to);
      if (accepted != accepted_.end()) fd = accepted->second;
    }
    if (fd < 0) {
      ++stats_.messages_dropped;
      return;
    }
    Conn& conn = *conns_.at(fd);
    const std::size_t before = conn.out.size();
    codec::encode(message, conn.out);
    ++stats_.messages_sent;
    stats_.bytes_sent += conn.out.size() - before;
    need_wake = true;
  }
  // The loop thread re-arms EPOLLOUT for connections with pending bytes.
  if (need_wake) wake();
}

NetworkStats TcpNetwork::stats() const {
  sync::MutexLock lock(mutex_);
  return stats_;
}

TcpStats TcpNetwork::tcp_stats() const {
  sync::MutexLock lock(mutex_);
  return tcp_stats_;
}

bool TcpNetwork::peer_connected(SiteId peer) const {
  sync::MutexLock lock(mutex_);
  const auto it = dialed_.find(peer);
  if (it == dialed_.end()) return false;
  const Conn& conn = *conns_.at(it->second);
  return !conn.connecting && conn.hello_received;
}

void TcpNetwork::drop_connections() {
  {
    sync::MutexLock lock(mutex_);
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) {
      (void)conn;
      fds.push_back(fd);
    }
    for (const int fd : fds) close_conn_locked(fd, true);
  }
  wake();
}

void TcpNetwork::interrupt_all() {
  sync::MutexLock lock(mutex_);
  for (auto& [site, mailbox] : mailboxes_) {
    (void)site;
    mailbox->interrupt();
  }
}

// --- event loop --------------------------------------------------------------

void TcpNetwork::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void TcpNetwork::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load()) {
    int timeout_ms = 200;  // upper bound; dial deadlines shorten it
    {
      sync::MutexLock lock(mutex_);
      const auto now = Clock::now();
      maybe_dial_locked(now);
      for (auto& [fd, conn] : conns_) {
        (void)fd;
        update_interest_locked(*conn);
      }
      for (const auto& [peer, dial] : dial_state_) {
        (void)peer;
        if (dialed_.count(peer) != 0) continue;
        const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
            dial.next_at - now);
        timeout_ms = std::clamp(static_cast<int>(wait.count()), 0, timeout_ms);
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    sync::MutexLock lock(mutex_);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
      } else if (fd == listen_fd_) {
        accept_all_locked();
      } else {
        handle_event_locked(fd, events[i].events);
      }
    }
  }
}

void TcpNetwork::maybe_dial_locked(Clock::time_point now) {
  for (auto& [peer, dial] : dial_state_) {
    if (dialed_.count(peer) != 0) continue;  // already live / in flight
    if (dial.next_at > now) continue;
    dial_locked(peer);
  }
}

void TcpNetwork::dial_locked(SiteId peer) {
  DialState& dial = dial_state_.at(peer);
  // Pre-schedule the next attempt; a successful connect resets the backoff.
  dial.next_at = Clock::now() + dial.backoff;
  dial.backoff = std::min(dial.backoff * 2, options_.reconnect_max);

  sockaddr_in addr{};
  if (!parse_hostport(peers_.at(peer), addr).ok()) return;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  set_nodelay(fd);
  ++tcp_stats_.dials;
  if (dial.was_established) ++tcp_stats_.reconnects;
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return;
  }

  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->dialed = true;
  conn->connecting = rc != 0;
  conn->peer = peer;
  // Hello goes out first on every connection, before anything send()
  // queued; it waits in the buffer until the connect completes.
  codec::encode(Message{local_, peer, Hello{local_, codec::kProtocolVersion}},
                conn->out);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  conn->interest = ev.events;
  dialed_[peer] = fd;
  conns_[fd] = std::move(conn);
}

void TcpNetwork::accept_all_locked() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing more to take
    set_nodelay(fd);
    ++tcp_stats_.accepts;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    // Identify ourselves; the peer id binds when their Hello arrives.
    codec::encode(Message{local_, 0, Hello{local_, codec::kProtocolVersion}},
                  conn->out);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conn->interest = ev.events;
    conns_[fd] = std::move(conn);
  }
}

void TcpNetwork::handle_event_locked(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // already closed this round
  Conn& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn_locked(fd, true);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    handle_writable_locked(conn);
    if (conns_.count(fd) == 0) return;
  }
  if ((events & EPOLLIN) != 0) handle_readable_locked(conn);
}

void TcpNetwork::handle_writable_locked(Conn& conn) {
  if (conn.connecting) {
    int error = 0;
    socklen_t len = sizeof(error);
    ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) {
      close_conn_locked(conn.fd, false);
      return;
    }
    conn.connecting = false;
    ++tcp_stats_.connects;
    dial_state_.at(conn.peer).backoff = options_.reconnect_min;
    dial_state_.at(conn.peer).was_established = true;
  }
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn_locked(conn.fd, true);
    return;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > 4096 && conn.out_offset * 2 > conn.out.size()) {
    conn.out.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
  update_interest_locked(conn);
}

void TcpNetwork::handle_readable_locked(Conn& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn.reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // 0 = orderly shutdown by the peer; <0 = error. Either way the
    // connection is gone once the buffered frames are drained below.
    close_conn_locked(conn.fd, true);
    return;
  }
  for (;;) {
    auto next = conn.reader.next();
    if (!next) {
      ++tcp_stats_.frames_rejected;
      DTX_WARN() << "tcp: dropping connection on corrupt frame: " +
                         next.status().to_string();
      close_conn_locked(conn.fd, true);
      return;
    }
    if (!next.value().has_value()) return;  // need more bytes
    Message message = std::move(next.value()).value();
    if (!conn.hello_received) {
      if (!handshake_locked(conn, message)) {
        close_conn_locked(conn.fd, false);
        return;
      }
      continue;
    }
    deliver_locked(std::move(message));
  }
}

bool TcpNetwork::handshake_locked(Conn& conn, const Message& message) {
  const Hello* hello = std::get_if<Hello>(&message.payload);
  if (hello == nullptr || hello->protocol != codec::kProtocolVersion) {
    DTX_WARN() << (hello == nullptr
                       ? std::string("tcp: first frame is not a Hello")
                       : "tcp: protocol mismatch: peer speaks v" +
                             std::to_string(hello->protocol));
    return false;
  }
  if (conn.dialed) {
    // The address book said this endpoint is `conn.peer`; believe the
    // socket, not the book.
    if (hello->id != conn.peer) {
      DTX_WARN() << "tcp: dialed peer " + std::to_string(conn.peer) +
                         " but it identifies as " + std::to_string(hello->id);
      return false;
    }
  } else {
    conn.peer = hello->id;
    // First accepted connection per peer wins the reply route; a newer one
    // replaces it (the peer reconnected — its old socket is dead or dying).
    accepted_[conn.peer] = conn.fd;
  }
  conn.hello_received = true;
  return true;
}

void TcpNetwork::deliver_locked(Message message) {
  const auto it = mailboxes_.find(message.to);
  if (it == mailboxes_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  it->second->push(std::move(message), Mailbox::Clock::now());
}

void TcpNetwork::close_conn_locked(int fd, bool lost) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (lost && !conn.connecting) ++tcp_stats_.disconnects;
  if (conn.dialed) {
    const auto route = dialed_.find(conn.peer);
    if (route != dialed_.end() && route->second == fd) dialed_.erase(route);
    // Queued bytes die with the socket (lossy contract): resuming the
    // buffer on a fresh connection could emit a torn frame.
  } else if (conn.hello_received) {
    const auto route = accepted_.find(conn.peer);
    if (route != accepted_.end() && route->second == fd) {
      accepted_.erase(route);
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

void TcpNetwork::update_interest_locked(Conn& conn) {
  std::uint32_t want = EPOLLIN;
  if (conn.connecting || conn.out_offset < conn.out.size()) {
    want |= EPOLLOUT;
  }
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = want;
}

}  // namespace dtx::net
