// FaultPlan: the composable fault model of the simulated LAN. Where the
// seed had a single global drop filter, a plan describes *how the network
// misbehaves* as data: per-link (and default) drop probability, extra
// delivery delay and duplication, timed bidirectional partitions, down
// (crashed) sites, and an optional message predicate for targeted tests.
// SimNetwork consults the plan on every send() under its own mutex — the
// plan itself is plain state plus a seeded Rng, so a fixed seed yields a
// reproducible decision stream for a fixed message sequence.
//
// This is the substrate of the chaos harness (workload::ChaosRunner): a
// seeded schedule toggles partitions / site crashes / link faults here
// while transactions run, exercising every Alg. 5/6 failure path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace dtx::net {

/// Fault parameters of one directed link (or the default for all links).
struct LinkFault {
  /// Probability a message on this link is silently dropped.
  double drop_probability = 0.0;
  /// Probability a message is delivered twice (duplicate arrives right
  /// after the original — per-link FIFO is preserved).
  double duplicate_probability = 0.0;
  /// Extra one-way delay added on top of the latency/bandwidth model.
  std::chrono::microseconds extra_delay{0};

  [[nodiscard]] bool benign() const noexcept {
    return drop_probability <= 0.0 && duplicate_probability <= 0.0 &&
           extra_delay.count() == 0;
  }
};

struct FaultStats {
  std::uint64_t dropped_by_fault = 0;      ///< LinkFault probability drops
  std::uint64_t dropped_by_partition = 0;  ///< active partition on the link
  std::uint64_t dropped_down_site = 0;     ///< sender or receiver crashed
  std::uint64_t dropped_by_filter = 0;     ///< message predicate matched
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;               ///< messages given extra delay
};

class FaultPlan {
 public:
  using Clock = std::chrono::steady_clock;

  /// What SimNetwork::send should do with one message.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    std::chrono::microseconds extra_delay{0};
  };

  /// Reseeds the fault Rng (drop / duplicate draws).
  void seed(std::uint64_t value) { rng_ = util::Rng(value); }

  // --- link faults -----------------------------------------------------------
  /// Fault applied to every link without a specific override.
  void set_default_fault(LinkFault fault) { default_fault_ = fault; }
  /// Fault of the directed link `from -> to` (overrides the default).
  void set_link_fault(SiteId from, SiteId to, LinkFault fault) {
    link_faults_[{from, to}] = fault;
  }
  void clear_link_faults() {
    link_faults_.clear();
    default_fault_ = LinkFault{};
  }

  // --- partitions ------------------------------------------------------------
  /// Cuts both directions between `a` and `b` until `until` (messages in
  /// either direction are dropped; already-queued deliveries are not
  /// recalled, matching a real partition's in-flight packets).
  void partition_until(SiteId a, SiteId b, Clock::time_point until) {
    partitions_[ordered(a, b)] = until;
  }
  void partition_for(SiteId a, SiteId b, std::chrono::microseconds duration) {
    partition_until(a, b, Clock::now() + duration);
  }
  /// Lifts every partition immediately.
  void heal() { partitions_.clear(); }
  [[nodiscard]] bool partitioned(SiteId a, SiteId b,
                                 Clock::time_point now) const {
    const auto it = partitions_.find(ordered(a, b));
    return it != partitions_.end() && now < it->second;
  }

  // --- down sites ------------------------------------------------------------
  /// A down (crashed) site neither receives nor sends: messages in either
  /// direction drop (a dead process has no sockets).
  void set_site_down(SiteId site, bool down) {
    if (down) {
      down_sites_.insert(site);
    } else {
      down_sites_.erase(site);
    }
  }
  [[nodiscard]] bool site_down(SiteId site) const {
    return down_sites_.count(site) != 0;
  }

  // --- targeted filter -------------------------------------------------------
  /// Drops every message the predicate matches — the composable successor
  /// of the seed's global drop filter, for tests that cut one payload kind
  /// (e.g. "drop every AbortAck"). nullptr clears it.
  void set_message_filter(std::function<bool(const Message&)> filter) {
    filter_ = std::move(filter);
  }

  /// Decides the fate of one message; updates the fault statistics. Called
  /// by SimNetwork::send under the network mutex.
  Decision apply(const Message& message, Clock::time_point now);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// True when no fault of any kind is configured (fast path).
  [[nodiscard]] bool benign() const noexcept {
    return default_fault_.benign() && link_faults_.empty() &&
           partitions_.empty() && down_sites_.empty() && filter_ == nullptr;
  }

 private:
  static std::pair<SiteId, SiteId> ordered(SiteId a, SiteId b) noexcept {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  [[nodiscard]] const LinkFault& fault_of(SiteId from, SiteId to) const {
    const auto it = link_faults_.find({from, to});
    return it != link_faults_.end() ? it->second : default_fault_;
  }

  util::Rng rng_{0x5eed5eedULL};
  LinkFault default_fault_;
  std::map<std::pair<SiteId, SiteId>, LinkFault> link_faults_;
  /// Bidirectional cuts keyed by the ordered site pair -> expiry instant.
  std::map<std::pair<SiteId, SiteId>, Clock::time_point> partitions_;
  std::set<SiteId> down_sites_;
  std::function<bool(const Message&)> filter_;
  FaultStats stats_;
};

}  // namespace dtx::net
