#include "net/fault_plan.hpp"

namespace dtx::net {

FaultPlan::Decision FaultPlan::apply(const Message& message,
                                     Clock::time_point now) {
  Decision decision;
  if (down_sites_.count(message.to) != 0 ||
      down_sites_.count(message.from) != 0) {
    ++stats_.dropped_down_site;
    decision.drop = true;
    return decision;
  }
  if (partitioned(message.from, message.to, now)) {
    ++stats_.dropped_by_partition;
    decision.drop = true;
    return decision;
  }
  if (filter_ && filter_(message)) {
    ++stats_.dropped_by_filter;
    decision.drop = true;
    return decision;
  }
  const LinkFault& fault = fault_of(message.from, message.to);
  if (fault.benign()) return decision;
  if (fault.drop_probability > 0.0 && rng_.next_bool(fault.drop_probability)) {
    ++stats_.dropped_by_fault;
    decision.drop = true;
    return decision;
  }
  if (fault.duplicate_probability > 0.0 &&
      rng_.next_bool(fault.duplicate_probability)) {
    ++stats_.duplicated;
    decision.duplicate = true;
  }
  if (fault.extra_delay.count() > 0) {
    ++stats_.delayed;
    decision.extra_delay = fault.extra_delay;
  }
  return decision;
}

}  // namespace dtx::net
