// TcpNetwork: the real transport — a net::Network over non-blocking TCP
// sockets driven by one epoll event-loop thread, speaking the binary codec
// (codec.hpp).
//
// Topology: every endpoint may listen (sites do, clients don't) and eagerly
// dials every peer in its address book, so a pair of sites typically holds
// two connections (one dialed by each side) — normal and harmless; each
// side prefers its own dialed connection for sending and falls back to an
// accepted one. The first frame on every connection, in both directions, is
// a Hello identifying the sender endpoint and its protocol version; it is
// consumed internally to bind the connection to its peer id (this is how
// replies reach remote clients: their accepted connection is bound to the
// client id from their Hello).
//
// Delivery contract (matches SimNetwork-with-faults, so the engine's
// timeout/recovery paths need no transport-specific cases): send() is
// fire-and-forget and *lossy* — no reachable connection means the message
// is dropped and counted, and a connection loss discards its queued bytes
// (a partial frame must never be followed by a fresh one). Dialed
// connections reconnect with capped exponential backoff; a corrupt frame
// (codec poison) drops the connection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace dtx::net {

struct TcpOptions {
  /// Listen address "host:port" (port 0 = kernel-assigned, see
  /// listen_port()). Empty = no listener (a pure client endpoint).
  std::string listen;
  /// Address book: peer site id -> "host:port". Dialed eagerly and
  /// redialed forever with backoff.
  std::map<SiteId, std::string> peers;
  std::chrono::milliseconds reconnect_min{50};
  std::chrono::milliseconds reconnect_max{2000};
};

/// Transport-level counters (the logical ones — messages/bytes/drops — are
/// NetworkStats via stats()).
struct TcpStats {
  std::uint64_t dials = 0;        ///< connection attempts started
  std::uint64_t connects = 0;     ///< dialed connections established
  std::uint64_t accepts = 0;      ///< inbound connections accepted
  std::uint64_t disconnects = 0;  ///< established connections lost
  std::uint64_t reconnects = 0;   ///< re-dials after an established loss
  std::uint64_t frames_rejected = 0;  ///< corrupt frames (connection dropped)
};

class TcpNetwork final : public Network {
 public:
  TcpNetwork(SiteId local, TcpOptions options);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Binds the listener (when configured) and spawns the event loop.
  /// Must be called (successfully) before send(); returns the bind /
  /// socket error otherwise.
  [[nodiscard]] util::Status start();

  /// Port actually bound (resolves a port-0 listen). 0 when not listening.
  [[nodiscard]] std::uint16_t listen_port() const;

  Mailbox& register_site(SiteId site) override;
  [[nodiscard]] std::vector<SiteId> sites() const override;
  void send(Message message) override;
  [[nodiscard]] NetworkStats stats() const override;
  void interrupt_all() override;

  /// Grows the address book at runtime (a joined member) and starts
  /// dialing. Re-adding an existing peer updates its address (a rejoin at
  /// a new endpoint — takes effect on the next redial).
  void add_peer(SiteId site, const std::string& address) override;

  [[nodiscard]] TcpStats tcp_stats() const;

  /// True when the dialed connection to `peer` is established (handshake
  /// done in both directions).
  [[nodiscard]] bool peer_connected(SiteId peer) const;

  /// Test hook: severs every live connection (as a network blip would).
  /// Dialed peers re-enter the backoff/reconnect path.
  void drop_connections();

 private:
  struct Conn;
  struct DialState {
    std::chrono::milliseconds backoff;
    std::chrono::steady_clock::time_point next_at;
    bool was_established = false;
  };

  void loop();
  void wake();
  void maybe_dial_locked(std::chrono::steady_clock::time_point now)
      DTX_REQUIRES(mutex_);
  void dial_locked(SiteId peer) DTX_REQUIRES(mutex_);
  void accept_all_locked() DTX_REQUIRES(mutex_);
  void handle_event_locked(int fd, std::uint32_t events) DTX_REQUIRES(mutex_);
  void handle_readable_locked(Conn& conn) DTX_REQUIRES(mutex_);
  void handle_writable_locked(Conn& conn) DTX_REQUIRES(mutex_);
  void deliver_locked(Message message) DTX_REQUIRES(mutex_);
  bool handshake_locked(Conn& conn, const Message& message)
      DTX_REQUIRES(mutex_);
  void close_conn_locked(int fd, bool lost) DTX_REQUIRES(mutex_);
  void update_interest_locked(Conn& conn) DTX_REQUIRES(mutex_);

  const SiteId local_;
  const TcpOptions options_;

  mutable sync::Mutex mutex_{sync::LockRank::kNetwork};
  /// Live address book (options_.peers + runtime add_peer joins).
  std::map<SiteId, std::string> peers_ DTX_GUARDED_BY(mutex_);
  std::map<SiteId, std::unique_ptr<Mailbox>> mailboxes_
      DTX_GUARDED_BY(mutex_);
  std::map<int, std::unique_ptr<Conn>> conns_
      DTX_GUARDED_BY(mutex_);  // keyed by fd
  std::map<SiteId, int> dialed_
      DTX_GUARDED_BY(mutex_);  // peer -> fd (alive, maybe connecting)
  std::map<SiteId, int> accepted_
      DTX_GUARDED_BY(mutex_);  // peer/client -> fd (post-Hello)
  std::map<SiteId, DialState> dial_state_ DTX_GUARDED_BY(mutex_);
  NetworkStats stats_ DTX_GUARDED_BY(mutex_);
  TcpStats tcp_stats_ DTX_GUARDED_BY(mutex_);

  // Set once in start() before the loop thread exists, then read by the
  // loop thread and wake() without the lock — effectively const while the
  // thread runs, so deliberately not guarded.
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ DTX_GUARDED_BY(mutex_) = 0;
  bool started_ DTX_GUARDED_BY(mutex_) = false;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace dtx::net
