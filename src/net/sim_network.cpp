#include "net/sim_network.hpp"

#include <algorithm>
#include <cassert>

namespace dtx::net {

SimNetwork::SimNetwork(NetworkOptions options) : options_(options) {}

Mailbox& SimNetwork::register_site(SiteId site) {
  sync::MutexLock lock(mutex_);
  auto& slot = mailboxes_[site];
  if (slot == nullptr) slot = std::make_unique<Mailbox>();
  return *slot;
}

std::vector<SiteId> SimNetwork::sites() const {
  sync::MutexLock lock(mutex_);
  std::vector<SiteId> out;
  out.reserve(mailboxes_.size());
  for (const auto& [site, mailbox] : mailboxes_) {
    (void)mailbox;
    if (!is_client_id(site)) out.push_back(site);
  }
  return out;
}

void SimNetwork::send(Message message) {
  Mailbox* mailbox = nullptr;
  Mailbox::Clock::time_point deliver_at;
  bool duplicate = false;
  {
    sync::MutexLock lock(mutex_);
    const auto now = Mailbox::Clock::now();
    const FaultPlan::Decision fate = faults_.apply(message, now);
    if (fate.drop) {
      ++stats_.messages_dropped;
      return;
    }
    duplicate = fate.duplicate;
    const auto it = mailboxes_.find(message.to);
    assert(it != mailboxes_.end() && "destination site not registered");
    if (it == mailboxes_.end()) return;
    mailbox = it->second.get();

    const std::size_t bytes = payload_wire_size(message.payload);
    ++stats_.messages_sent;
    stats_.bytes_sent += bytes;

    auto transmit = std::chrono::microseconds(0);
    if (options_.bandwidth_bytes_per_sec > 0) {
      transmit = std::chrono::microseconds(
          bytes * 1'000'000 / options_.bandwidth_bytes_per_sec);
    }
    // Serialize transmissions per link, then add propagation latency plus
    // any fault-injected extra delay.
    const auto link = std::make_pair(message.from, message.to);
    auto& link_ready = link_ready_at_[link];
    const auto start = std::max(link_ready, now);
    link_ready = start + transmit;
    deliver_at = link_ready + options_.latency + fate.extra_delay;
    // Extra delays vary as the fault plan changes; clamp so delivery times
    // stay monotone per link (the FIFO guarantee survives fault changes).
    auto& last_delivery = link_last_delivery_[link];
    deliver_at = std::max(deliver_at, last_delivery);
    last_delivery = deliver_at;
  }
  if (duplicate) {
    // The duplicate lands immediately after the original (same stamp; the
    // mailbox sequence number keeps the order stable).
    Message copy = message;
    mailbox->push(std::move(copy), deliver_at);
  }
  mailbox->push(std::move(message), deliver_at);
}

void SimNetwork::faults(const std::function<void(FaultPlan&)>& mutate) {
  sync::MutexLock lock(mutex_);
  mutate(faults_);
}

void SimNetwork::partition_for(SiteId a, SiteId b,
                               std::chrono::microseconds duration) {
  sync::MutexLock lock(mutex_);
  faults_.partition_for(a, b, duration);
}

void SimNetwork::heal() {
  sync::MutexLock lock(mutex_);
  faults_.heal();
}

void SimNetwork::set_site_down(SiteId site, bool down) {
  sync::MutexLock lock(mutex_);
  faults_.set_site_down(site, down);
}

bool SimNetwork::site_down(SiteId site) const {
  sync::MutexLock lock(mutex_);
  return faults_.site_down(site);
}

NetworkStats SimNetwork::stats() const {
  sync::MutexLock lock(mutex_);
  return stats_;
}

FaultStats SimNetwork::fault_stats() const {
  sync::MutexLock lock(mutex_);
  return faults_.stats();
}

void SimNetwork::interrupt_all() {
  sync::MutexLock lock(mutex_);
  for (auto& [site, mailbox] : mailboxes_) {
    (void)site;
    mailbox->interrupt();
  }
}

}  // namespace dtx::net
