#include "net/network.hpp"

#include <algorithm>

namespace dtx::net {

void Mailbox::push(Message message, Clock::time_point deliver_at) {
  {
    sync::MutexLock lock(mutex_);
    queue_.push(Timed{deliver_at, next_sequence_++, std::move(message)});
  }
  available_.notify_all();
}

std::optional<Message> Mailbox::pop(std::chrono::microseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  sync::MutexLock lock(mutex_);
  for (;;) {
    if (interrupted_) return std::nullopt;
    const auto now = Clock::now();
    auto wake = deadline;
    if (!queue_.empty()) {
      const auto due = queue_.top().deliver_at;
      if (due <= now) {
        Message message = std::move(const_cast<Timed&>(queue_.top()).message);
        queue_.pop();
        return message;
      }
      wake = std::min(due, deadline);
    }
    if (now >= deadline) return std::nullopt;
    available_.wait_until(mutex_, wake);
  }
}

std::optional<Message> Mailbox::try_pop() {
  sync::MutexLock lock(mutex_);
  if (queue_.empty() || queue_.top().deliver_at > Clock::now()) {
    return std::nullopt;
  }
  Message message = std::move(const_cast<Timed&>(queue_.top()).message);
  queue_.pop();
  return message;
}

void Mailbox::interrupt() {
  {
    sync::MutexLock lock(mutex_);
    interrupted_ = true;
  }
  available_.notify_all();
}

void Mailbox::reset() {
  sync::MutexLock lock(mutex_);
  queue_ = {};
  interrupted_ = false;
}

std::size_t Mailbox::pending() const {
  sync::MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace dtx::net
