// SimNetwork: the in-process stand-in for the paper's 100 Mbit/s Ethernet
// LAN. Each site owns a mailbox; send() stamps the message with a delivery
// time computed from a latency + bandwidth model and the receiver's pop()
// blocks until the earliest message is due. Per-(sender, receiver) FIFO
// order is preserved (delivery time is kept monotone per link even when
// fault-injected extra delays vary), matching TCP's in-order guarantee that
// the coordinator/participant algorithms rely on.
//
// Fault injection runs through a composable FaultPlan (fault_plan.hpp):
// per-link drop / duplication / extra delay, timed bidirectional partitions,
// down (crashed) sites and a targeted message filter. A dropped request
// surfaces as a timeout at the waiting peer, exercising the Alg. 5/6
// abort / fail paths; mutate the plan through faults().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "net/fault_plan.hpp"
#include "net/message.hpp"

namespace dtx::net {

struct NetworkOptions {
  /// One-way latency applied to every message.
  std::chrono::microseconds latency{100};
  /// Link bandwidth in bytes/second (0 = infinite). 100 Mbit/s full duplex
  /// as in the paper's cluster = 12'500'000 B/s.
  std::uint64_t bandwidth_bytes_per_sec = 12'500'000;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;
};

class Mailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Enqueues a message due at `deliver_at`.
  void push(Message message, Clock::time_point deliver_at);

  /// Blocks until a message is deliverable or `timeout` elapses.
  std::optional<Message> pop(std::chrono::microseconds timeout);

  /// Non-blocking variant.
  std::optional<Message> try_pop();

  /// Wakes all blocked poppers (shutdown).
  void interrupt();

  /// Drops every queued message and clears the interrupted flag — a site
  /// restart begins with an empty, serviceable mailbox (a real crash loses
  /// the socket buffers with the process).
  void reset();

  [[nodiscard]] std::size_t pending() const;

 private:
  struct Timed {
    Clock::time_point deliver_at;
    std::uint64_t sequence;  // tie-break keeps per-link FIFO
    Message message;
  };
  struct Later {
    bool operator()(const Timed& a, const Timed& b) const {
      return a.deliver_at != b.deliver_at ? a.deliver_at > b.deliver_at
                                          : a.sequence > b.sequence;
    }
  };

  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::priority_queue<Timed, std::vector<Timed>, Later> queue_;
  std::uint64_t next_sequence_ = 0;
  bool interrupted_ = false;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetworkOptions options = {});

  /// Registers a site and returns its mailbox (stable address).
  Mailbox& register_site(SiteId site);

  [[nodiscard]] std::vector<SiteId> sites() const;

  /// Sends a message; applies the latency/bandwidth model and the fault
  /// plan (drop / duplicate / delay / partition / down-site).
  void send(Message message);

  /// Mutates the fault plan under the network lock — the only sanctioned
  /// way to reconfigure faults while traffic flows:
  ///   network.faults([&](net::FaultPlan& plan) { plan.heal(); });
  void faults(const std::function<void(FaultPlan&)>& mutate);

  // Convenience wrappers over faults() for the common chaos moves.
  void partition_for(SiteId a, SiteId b, std::chrono::microseconds duration);
  void heal();
  void set_site_down(SiteId site, bool down);
  [[nodiscard]] bool site_down(SiteId site) const;

  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] FaultStats fault_stats() const;

  /// Wakes every blocked receiver (shutdown).
  void interrupt_all();

 private:
  NetworkOptions options_;
  mutable std::mutex mutex_;
  std::map<SiteId, std::unique_ptr<Mailbox>> mailboxes_;
  FaultPlan faults_;
  NetworkStats stats_;
  // Per-link clock keeping delivery monotone (FIFO) even when bandwidth
  // delays vary by message size.
  std::map<std::pair<SiteId, SiteId>, Mailbox::Clock::time_point>
      link_ready_at_;
  // Last stamped delivery time per link: fault-injected extra delays vary
  // over time, so monotonicity (per-link FIFO) is enforced explicitly.
  std::map<std::pair<SiteId, SiteId>, Mailbox::Clock::time_point>
      link_last_delivery_;
};

}  // namespace dtx::net
