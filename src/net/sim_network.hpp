// SimNetwork: the in-process stand-in for the paper's 100 Mbit/s Ethernet
// LAN. Each site owns a mailbox; send() stamps the message with a delivery
// time computed from a latency + bandwidth model and the receiver's pop()
// blocks until the earliest message is due. Per-(sender, receiver) FIFO
// order is preserved (delivery time is kept monotone per link even when
// fault-injected extra delays vary), matching TCP's in-order guarantee that
// the coordinator/participant algorithms rely on.
//
// Fault injection runs through a composable FaultPlan (fault_plan.hpp):
// per-link drop / duplication / extra delay, timed bidirectional partitions,
// down (crashed) sites and a targeted message filter. A dropped request
// surfaces as a timeout at the waiting peer, exercising the Alg. 5/6
// abort / fail paths; mutate the plan through faults().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/fault_plan.hpp"
#include "net/network.hpp"
#include "util/sync.hpp"

namespace dtx::net {

struct NetworkOptions {
  /// One-way latency applied to every message.
  std::chrono::microseconds latency{100};
  /// Link bandwidth in bytes/second (0 = infinite). 100 Mbit/s full duplex
  /// as in the paper's cluster = 12'500'000 B/s.
  std::uint64_t bandwidth_bytes_per_sec = 12'500'000;
};

class SimNetwork final : public Network {
 public:
  explicit SimNetwork(NetworkOptions options = {});

  /// Registers a site (or a client endpoint) and returns its mailbox
  /// (stable address).
  Mailbox& register_site(SiteId site) override;

  /// Registered site endpoints; client ids are filtered out per the
  /// Network contract.
  [[nodiscard]] std::vector<SiteId> sites() const override;

  /// Sends a message; applies the latency/bandwidth model and the fault
  /// plan (drop / duplicate / delay / partition / down-site).
  void send(Message message) override;

  /// Mutates the fault plan under the network lock — the only sanctioned
  /// way to reconfigure faults while traffic flows:
  ///   network.faults([&](net::FaultPlan& plan) { plan.heal(); });
  void faults(const std::function<void(FaultPlan&)>& mutate);

  // Convenience wrappers over faults() for the common chaos moves.
  void partition_for(SiteId a, SiteId b, std::chrono::microseconds duration);
  void heal();
  void set_site_down(SiteId site, bool down) override;
  [[nodiscard]] bool site_down(SiteId site) const;

  [[nodiscard]] NetworkStats stats() const override;
  [[nodiscard]] FaultStats fault_stats() const;

  /// Wakes every blocked receiver (shutdown).
  void interrupt_all() override;

 private:
  NetworkOptions options_;
  mutable sync::Mutex mutex_{sync::LockRank::kNetwork};
  // Mailbox pointers are stable; pushes happen after mutex_ is dropped
  // (the mailbox has its own, deeper-ranked lock).
  std::map<SiteId, std::unique_ptr<Mailbox>> mailboxes_
      DTX_GUARDED_BY(mutex_);
  FaultPlan faults_ DTX_GUARDED_BY(mutex_);
  NetworkStats stats_ DTX_GUARDED_BY(mutex_);
  // Per-link clock keeping delivery monotone (FIFO) even when bandwidth
  // delays vary by message size.
  std::map<std::pair<SiteId, SiteId>, Mailbox::Clock::time_point>
      link_ready_at_ DTX_GUARDED_BY(mutex_);
  // Last stamped delivery time per link: fault-injected extra delays vary
  // over time, so monotonicity (per-link FIFO) is enforced explicitly.
  std::map<std::pair<SiteId, SiteId>, Mailbox::Clock::time_point>
      link_last_delivery_ DTX_GUARDED_BY(mutex_);
};

}  // namespace dtx::net
