#include "net/codec.hpp"

#include <cstring>

#include "util/hash.hpp"

namespace dtx::net::codec {

using util::Code;
using util::Result;
using util::Status;

namespace {

// Payload tags: the variant alternative's position plus one, frozen here as
// explicit constants (the wire contract — reordering the variant without
// renumbering would silently change the protocol; the static_assert below
// forces this table to be revisited whenever an alternative is added).
enum Tag : std::uint8_t {
  kTagExecuteOperation = 1,
  kTagOperationResult = 2,
  kTagUndoOperation = 3,
  kTagCommitRequest = 4,
  kTagCommitAck = 5,
  kTagAbortRequest = 6,
  kTagAbortAck = 7,
  kTagFailNotice = 8,
  kTagWfgRequest = 9,
  kTagWfgReply = 10,
  kTagVictimAbort = 11,
  kTagWakeTxn = 12,
  kTagTxnStatusRequest = 13,
  kTagTxnStatusReply = 14,
  kTagSnapshotReadRequest = 15,
  kTagSnapshotReadReply = 16,
  kTagHello = 17,
  kTagClientSubmit = 18,
  kTagClientReply = 19,
  kTagRecoveryPullRequest = 20,
  kTagRecoveryPullReply = 21,
  kTagCatalogUpdate = 22,
  kTagCatalogAck = 23,
  kTagJoinRequest = 24,
  kTagJoinReply = 25,
  kTagMigrateDoc = 26,
  kTagMigrateAck = 27,
  kTagDropDoc = 28,
};

static_assert(std::variant_size_v<Payload> == 28,
              "new Payload alternative: assign its Tag and add an encoder, "
              "a decoder case and a payload_name entry");

constexpr std::size_t kHeaderBytes = 4 + 4 + 8;  // magic, length, checksum

// --- primitive writers ------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.append(v);
  }
  void str_vec(const std::vector<std::string>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const std::string& s : v) str(s);
  }
  void row_vec(const std::vector<std::vector<std::string>>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& rows : v) str_vec(rows);
  }
  void u32_vec(const std::vector<std::uint32_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint32_t x : v) u32(x);
  }
  /// Canonical text form — the WAL's round-trippable operation encoding.
  void op(const txn::Operation& v) { str(v.to_string()); }
  void op_vec(const std::vector<txn::Operation>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const txn::Operation& o : v) op(o);
  }

 private:
  std::string& out_;
};

// --- primitive readers ------------------------------------------------------

// Fail-stop reader: every getter checks bounds and flips `ok` on underflow
// or malformed content; callers check ok once per frame. Values read after
// a failure are zero/empty — never uninitialized, never out of bounds.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == data_.size();
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail("boolean byte not 0/1");
    return v == 1;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// A byte constrained to [0, max] — enum range validation.
  std::uint8_t enum8(std::uint8_t max, const char* what) {
    const std::uint8_t v = u8();
    if (v > max) fail(what);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!need(len)) return {};
    std::string v(data_.substr(pos_, len));
    pos_ += len;
    return v;
  }
  std::vector<std::string> str_vec() {
    const std::uint32_t count = u32();
    std::vector<std::string> v;
    for (std::uint32_t i = 0; ok_ && i < count; ++i) v.push_back(str());
    return v;
  }
  std::vector<std::vector<std::string>> row_vec() {
    const std::uint32_t count = u32();
    std::vector<std::vector<std::string>> v;
    for (std::uint32_t i = 0; ok_ && i < count; ++i) v.push_back(str_vec());
    return v;
  }
  std::vector<std::uint32_t> u32_vec() {
    const std::uint32_t count = u32();
    std::vector<std::uint32_t> v;
    for (std::uint32_t i = 0; ok_ && i < count; ++i) v.push_back(u32());
    return v;
  }
  txn::Operation op() {
    const std::string text = str();
    if (!ok_) return {};
    auto parsed = txn::parse_operation(text);
    if (!parsed) {
      fail("unparsable operation payload");
      return {};
    }
    return std::move(parsed).value();
  }
  std::vector<txn::Operation> op_vec() {
    const std::uint32_t count = u32();
    std::vector<txn::Operation> v;
    for (std::uint32_t i = 0; ok_ && i < count; ++i) v.push_back(op());
    return v;
  }

  void fail(const char* what) {
    if (ok_) {
      ok_ = false;
      error_ = what;
    }
  }
  [[nodiscard]] const char* error() const noexcept { return error_; }

 private:
  bool need(std::size_t n) {
    if (!ok_) return false;
    if (data_.size() - pos_ < n) {
      fail("truncated payload");
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  const char* error_ = "payload malformed";
};

constexpr std::uint8_t kMaxAbortReason =
    static_cast<std::uint8_t>(txn::AbortReason::kStaleCatalog);
constexpr std::uint8_t kMaxTxnOutcome =
    static_cast<std::uint8_t>(TxnOutcome::kAborted);
// txn::TxnState tops out at kFailed = 4; transaction.hpp is above the wire
// layer, so the bound is mirrored here (ClientReply carries the raw byte).
constexpr std::uint8_t kMaxTxnState = 4;

// --- per-payload encoders ---------------------------------------------------

struct EncodeVisitor {
  Writer& w;

  void operator()(const ExecuteOperation& m) const {
    w.u8(kTagExecuteOperation);
    w.u64(m.txn);
    w.u32(m.op_index);
    w.u32(m.attempt);
    w.u32(m.coordinator);
    w.u64(m.epoch);
    w.op(m.op);
  }
  void operator()(const OperationResult& m) const {
    w.u8(kTagOperationResult);
    w.u64(m.txn);
    w.u32(m.op_index);
    w.u32(m.attempt);
    w.boolean(m.executed);
    w.boolean(m.lock_conflict);
    w.boolean(m.failed);
    w.boolean(m.deadlock);
    w.str_vec(m.rows);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.str(m.error);
  }
  void operator()(const UndoOperation& m) const {
    w.u8(kTagUndoOperation);
    w.u64(m.txn);
    w.u32(m.op_index);
  }
  void operator()(const CommitRequest& m) const {
    w.u8(kTagCommitRequest);
    w.u64(m.txn);
  }
  void operator()(const CommitAck& m) const {
    w.u8(kTagCommitAck);
    w.u64(m.txn);
    w.boolean(m.ok);
  }
  void operator()(const AbortRequest& m) const {
    w.u8(kTagAbortRequest);
    w.u64(m.txn);
  }
  void operator()(const AbortAck& m) const {
    w.u8(kTagAbortAck);
    w.u64(m.txn);
    w.boolean(m.ok);
  }
  void operator()(const FailNotice& m) const {
    w.u8(kTagFailNotice);
    w.u64(m.txn);
  }
  void operator()(const WfgRequest& m) const {
    w.u8(kTagWfgRequest);
    w.u64(m.probe);
    w.u32(m.requester);
  }
  void operator()(const WfgReply& m) const {
    w.u8(kTagWfgReply);
    w.u64(m.probe);
    w.u32(static_cast<std::uint32_t>(m.edges.size()));
    for (const wfg::Edge& edge : m.edges) {
      w.u64(edge.waiter);
      w.u64(edge.holder);
    }
  }
  void operator()(const VictimAbort& m) const {
    w.u8(kTagVictimAbort);
    w.u64(m.txn);
  }
  void operator()(const WakeTxn& m) const {
    w.u8(kTagWakeTxn);
    w.u64(m.txn);
  }
  void operator()(const TxnStatusRequest& m) const {
    w.u8(kTagTxnStatusRequest);
    w.u64(m.txn);
    w.u32(m.requester);
  }
  void operator()(const TxnStatusReply& m) const {
    w.u8(kTagTxnStatusReply);
    w.u64(m.txn);
    w.u8(static_cast<std::uint8_t>(m.outcome));
  }
  void operator()(const SnapshotReadRequest& m) const {
    w.u8(kTagSnapshotReadRequest);
    w.u64(m.txn);
    w.u32(m.coordinator);
    w.u64(m.epoch);
    w.u32_vec(m.op_indices);
    w.op_vec(m.ops);
  }
  void operator()(const SnapshotReadReply& m) const {
    w.u8(kTagSnapshotReadReply);
    w.u64(m.txn);
    w.boolean(m.ok);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.str(m.error);
    w.u32_vec(m.op_indices);
    w.row_vec(m.rows);
  }
  void operator()(const Hello& m) const {
    w.u8(kTagHello);
    w.u32(m.id);
    w.u32(m.protocol);
  }
  void operator()(const ClientSubmit& m) const {
    w.u8(kTagClientSubmit);
    w.u64(m.seq);
    w.op_vec(m.ops);
  }
  void operator()(const ClientReply& m) const {
    w.u8(kTagClientReply);
    w.u64(m.seq);
    w.boolean(m.accepted);
    w.u64(m.txn);
    w.u8(m.state);
    w.u8(m.reason);
    w.boolean(m.deadlock_victim);
    w.u32(m.wait_episodes);
    w.f64(m.response_ms);
    w.str(m.detail);
    w.row_vec(m.rows);
  }
  void operator()(const RecoveryPullRequest& m) const {
    w.u8(kTagRecoveryPullRequest);
    w.str(m.doc);
    w.u32(m.requester);
  }
  void operator()(const RecoveryPullReply& m) const {
    w.u8(kTagRecoveryPullReply);
    w.str(m.doc);
    w.boolean(m.ok);
    w.u64(m.version);
    w.str(m.snapshot);
    w.str(m.log);
  }
  void operator()(const CatalogUpdate& m) const {
    w.u8(kTagCatalogUpdate);
    w.u64(m.epoch);
    w.str(m.catalog);
    w.u32(m.admin);
  }
  void operator()(const CatalogAck& m) const {
    w.u8(kTagCatalogAck);
    w.u64(m.epoch);
    w.u32(m.site);
  }
  void operator()(const JoinRequest& m) const {
    w.u8(kTagJoinRequest);
    w.u32(m.site);
    w.str(m.address);
  }
  void operator()(const JoinReply& m) const {
    w.u8(kTagJoinReply);
    w.boolean(m.ok);
    w.u64(m.epoch);
    w.str(m.catalog);
    w.str(m.error);
  }
  void operator()(const MigrateDoc& m) const {
    w.u8(kTagMigrateDoc);
    w.str(m.doc);
    w.u64(m.epoch);
    w.u64(m.version);
    w.str(m.snapshot);
    w.str(m.log);
  }
  void operator()(const MigrateAck& m) const {
    w.u8(kTagMigrateAck);
    w.str(m.doc);
    w.u32(m.site);
    w.boolean(m.ok);
    w.u64(m.version);
  }
  void operator()(const DropDoc& m) const {
    w.u8(kTagDropDoc);
    w.str(m.doc);
    w.u64(m.epoch);
  }
};

// --- per-payload decoders ---------------------------------------------------

Payload decode_payload(std::uint8_t tag, Reader& r) {
  switch (tag) {
    case kTagExecuteOperation: {
      ExecuteOperation m;
      m.txn = r.u64();
      m.op_index = r.u32();
      m.attempt = r.u32();
      m.coordinator = r.u32();
      m.epoch = r.u64();
      m.op = r.op();
      return m;
    }
    case kTagOperationResult: {
      OperationResult m;
      m.txn = r.u64();
      m.op_index = r.u32();
      m.attempt = r.u32();
      m.executed = r.boolean();
      m.lock_conflict = r.boolean();
      m.failed = r.boolean();
      m.deadlock = r.boolean();
      m.rows = r.str_vec();
      m.reason = static_cast<txn::AbortReason>(
          r.enum8(kMaxAbortReason, "abort reason out of range"));
      m.error = r.str();
      return m;
    }
    case kTagUndoOperation: {
      UndoOperation m;
      m.txn = r.u64();
      m.op_index = r.u32();
      return m;
    }
    case kTagCommitRequest: return CommitRequest{r.u64()};
    case kTagCommitAck: {
      CommitAck m;
      m.txn = r.u64();
      m.ok = r.boolean();
      return m;
    }
    case kTagAbortRequest: return AbortRequest{r.u64()};
    case kTagAbortAck: {
      AbortAck m;
      m.txn = r.u64();
      m.ok = r.boolean();
      return m;
    }
    case kTagFailNotice: return FailNotice{r.u64()};
    case kTagWfgRequest: {
      WfgRequest m;
      m.probe = r.u64();
      m.requester = r.u32();
      return m;
    }
    case kTagWfgReply: {
      WfgReply m;
      m.probe = r.u64();
      const std::uint32_t count = r.u32();
      for (std::uint32_t i = 0; r.ok() && i < count; ++i) {
        wfg::Edge edge;
        edge.waiter = r.u64();
        edge.holder = r.u64();
        m.edges.push_back(edge);
      }
      return m;
    }
    case kTagVictimAbort: return VictimAbort{r.u64()};
    case kTagWakeTxn: return WakeTxn{r.u64()};
    case kTagTxnStatusRequest: {
      TxnStatusRequest m;
      m.txn = r.u64();
      m.requester = r.u32();
      return m;
    }
    case kTagTxnStatusReply: {
      TxnStatusReply m;
      m.txn = r.u64();
      m.outcome = static_cast<TxnOutcome>(
          r.enum8(kMaxTxnOutcome, "txn outcome out of range"));
      return m;
    }
    case kTagSnapshotReadRequest: {
      SnapshotReadRequest m;
      m.txn = r.u64();
      m.coordinator = r.u32();
      m.epoch = r.u64();
      m.op_indices = r.u32_vec();
      m.ops = r.op_vec();
      return m;
    }
    case kTagSnapshotReadReply: {
      SnapshotReadReply m;
      m.txn = r.u64();
      m.ok = r.boolean();
      m.reason = static_cast<txn::AbortReason>(
          r.enum8(kMaxAbortReason, "abort reason out of range"));
      m.error = r.str();
      m.op_indices = r.u32_vec();
      m.rows = r.row_vec();
      return m;
    }
    case kTagHello: {
      Hello m;
      m.id = r.u32();
      m.protocol = r.u32();
      return m;
    }
    case kTagClientSubmit: {
      ClientSubmit m;
      m.seq = r.u64();
      m.ops = r.op_vec();
      return m;
    }
    case kTagClientReply: {
      ClientReply m;
      m.seq = r.u64();
      m.accepted = r.boolean();
      m.txn = r.u64();
      m.state = r.enum8(kMaxTxnState, "txn state out of range");
      m.reason = r.enum8(kMaxAbortReason, "abort reason out of range");
      m.deadlock_victim = r.boolean();
      m.wait_episodes = r.u32();
      m.response_ms = r.f64();
      m.detail = r.str();
      m.rows = r.row_vec();
      return m;
    }
    case kTagRecoveryPullRequest: {
      RecoveryPullRequest m;
      m.doc = r.str();
      m.requester = r.u32();
      return m;
    }
    case kTagRecoveryPullReply: {
      RecoveryPullReply m;
      m.doc = r.str();
      m.ok = r.boolean();
      m.version = r.u64();
      m.snapshot = r.str();
      m.log = r.str();
      return m;
    }
    case kTagCatalogUpdate: {
      CatalogUpdate m;
      m.epoch = r.u64();
      m.catalog = r.str();
      m.admin = r.u32();
      return m;
    }
    case kTagCatalogAck: {
      CatalogAck m;
      m.epoch = r.u64();
      m.site = r.u32();
      return m;
    }
    case kTagJoinRequest: {
      JoinRequest m;
      m.site = r.u32();
      m.address = r.str();
      return m;
    }
    case kTagJoinReply: {
      JoinReply m;
      m.ok = r.boolean();
      m.epoch = r.u64();
      m.catalog = r.str();
      m.error = r.str();
      return m;
    }
    case kTagMigrateDoc: {
      MigrateDoc m;
      m.doc = r.str();
      m.epoch = r.u64();
      m.version = r.u64();
      m.snapshot = r.str();
      m.log = r.str();
      return m;
    }
    case kTagMigrateAck: {
      MigrateAck m;
      m.doc = r.str();
      m.site = r.u32();
      m.ok = r.boolean();
      m.version = r.u64();
      return m;
    }
    case kTagDropDoc: {
      DropDoc m;
      m.doc = r.str();
      m.epoch = r.u64();
      return m;
    }
    default:
      r.fail("unknown payload tag");
      return WakeTxn{};
  }
}

Result<Message> decode_body(std::string_view body) {
  Reader r(body);
  Message message;
  message.from = r.u32();
  message.to = r.u32();
  const std::uint8_t tag = r.u8();
  message.payload = decode_payload(tag, r);
  if (!r.ok()) {
    return Status(Code::kInvalidArgument,
                  std::string("bad frame: ") + r.error());
  }
  if (!r.done()) {
    return Status(Code::kInvalidArgument, "bad frame: trailing bytes");
  }
  return message;
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void encode(const Message& message, std::string& out) {
  const std::size_t header_at = out.size();
  out.reserve(out.size() + kHeaderBytes + 64);
  append_u32(out, kMagic);
  append_u32(out, 0);  // length backpatched below
  append_u64(out, 0);  // checksum backpatched below
  const std::size_t body_at = out.size();
  Writer w(out);
  w.u32(message.from);
  w.u32(message.to);
  std::visit(EncodeVisitor{w}, message.payload);
  const std::size_t body_len = out.size() - body_at;
  const std::uint64_t checksum =
      util::fnv1a64(std::string_view(out).substr(body_at, body_len));
  std::string patch;
  append_u32(patch, static_cast<std::uint32_t>(body_len));
  append_u64(patch, checksum);
  out.replace(header_at + 4, patch.size(), patch);
}

std::string encode(const Message& message) {
  std::string out;
  encode(message, out);
  return out;
}

Result<Message> decode(std::string_view frame) {
  if (frame.size() < kHeaderBytes) {
    return Status(Code::kInvalidArgument, "bad frame: truncated header");
  }
  if (read_u32(frame.data()) != kMagic) {
    return Status(Code::kInvalidArgument, "bad frame: magic mismatch");
  }
  const std::uint32_t length = read_u32(frame.data() + 4);
  if (length > kMaxFrameBytes) {
    return Status(Code::kInvalidArgument, "bad frame: length out of bounds");
  }
  if (frame.size() != kHeaderBytes + length) {
    return Status(Code::kInvalidArgument,
                  frame.size() < kHeaderBytes + length
                      ? "bad frame: truncated body"
                      : "bad frame: trailing bytes");
  }
  const std::uint64_t checksum = read_u64(frame.data() + 8);
  const std::string_view body = frame.substr(kHeaderBytes, length);
  if (util::fnv1a64(body) != checksum) {
    return Status(Code::kInternal, "bad frame: checksum mismatch");
  }
  return decode_body(body);
}

std::size_t encoded_payload_size(const Payload& payload) {
  // One scratch buffer per thread: the SimNetwork bandwidth model calls
  // this per send, so the encode must not allocate each time.
  thread_local std::string scratch;
  scratch.clear();
  encode(Message{0, 0, payload}, scratch);
  return scratch.size();
}

void FrameReader::feed(std::string_view bytes) {
  // Compact before the buffer doubles in place forever.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes);
}

Result<std::optional<Message>> FrameReader::next() {
  if (poisoned_) {
    return Status(Code::kInternal, "frame stream poisoned");
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(offset_);
  if (pending.size() < kHeaderBytes) return std::optional<Message>{};
  if (read_u32(pending.data()) != kMagic) {
    poisoned_ = true;
    return Status(Code::kInternal, "bad frame: magic mismatch");
  }
  const std::uint32_t length = read_u32(pending.data() + 4);
  if (length > kMaxFrameBytes) {
    poisoned_ = true;
    return Status(Code::kInternal, "bad frame: length out of bounds");
  }
  if (pending.size() < kHeaderBytes + length) return std::optional<Message>{};
  Result<Message> message = decode(pending.substr(0, kHeaderBytes + length));
  if (!message) {
    poisoned_ = true;
    return message.status();
  }
  offset_ += kHeaderBytes + length;
  return std::optional<Message>{std::move(message).value()};
}

}  // namespace dtx::net::codec
