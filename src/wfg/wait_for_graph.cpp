#include "wfg/wait_for_graph.hpp"

#include <algorithm>

namespace dtx::wfg {

void WaitForGraph::add_edge(TxnId waiter, TxnId holder) {
  if (waiter == holder) return;
  adjacency_[waiter].insert(holder);
}

void WaitForGraph::add_edges(TxnId waiter, const std::vector<TxnId>& holders) {
  for (TxnId holder : holders) add_edge(waiter, holder);
}

void WaitForGraph::clear_waiter(TxnId waiter) { adjacency_.erase(waiter); }

void WaitForGraph::remove_txn(TxnId txn) {
  adjacency_.erase(txn);
  for (auto it = adjacency_.begin(); it != adjacency_.end();) {
    it->second.erase(txn);
    if (it->second.empty()) {
      it = adjacency_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

enum class Color : std::uint8_t { kWhite, kGray, kBlack };

/// Iterative DFS; returns the cycle (in order) through the first back edge
/// found, or an empty vector.
std::vector<TxnId> dfs_find_cycle(
    const std::unordered_map<TxnId, std::set<TxnId>>& adjacency) {
  std::unordered_map<TxnId, Color> color;
  std::unordered_map<TxnId, TxnId> parent;

  for (const auto& [start, unused] : adjacency) {
    (void)unused;
    if (color[start] != Color::kWhite) continue;

    struct Frame {
      TxnId node;
      std::set<TxnId>::const_iterator next;
      std::set<TxnId>::const_iterator end;
    };
    std::vector<Frame> stack;
    const auto push = [&](TxnId node) {
      color[node] = Color::kGray;
      const auto it = adjacency.find(node);
      if (it == adjacency.end()) {
        static const std::set<TxnId> kEmpty;
        stack.push_back(Frame{node, kEmpty.begin(), kEmpty.end()});
      } else {
        stack.push_back(Frame{node, it->second.begin(), it->second.end()});
      }
    };
    push(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next == frame.end) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId successor = *frame.next++;
      const Color successor_color = color[successor];
      if (successor_color == Color::kGray) {
        // Back edge: the cycle is successor -> ... -> frame.node -> successor.
        std::vector<TxnId> cycle;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          cycle.push_back(it->node);
          if (it->node == successor) break;
        }
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
      if (successor_color == Color::kWhite) {
        parent[successor] = frame.node;
        push(successor);
      }
    }
  }
  return {};
}

}  // namespace

bool WaitForGraph::has_cycle() const {
  return !dfs_find_cycle(adjacency_).empty();
}

std::vector<TxnId> WaitForGraph::find_cycle() const {
  return dfs_find_cycle(adjacency_);
}

TxnId WaitForGraph::newest_on_cycle() const {
  const std::vector<TxnId> cycle = dfs_find_cycle(adjacency_);
  if (cycle.empty()) return 0;
  return *std::max_element(cycle.begin(), cycle.end());
}

void WaitForGraph::merge(const WaitForGraph& other) {
  for (const auto& [waiter, holders] : other.adjacency_) {
    adjacency_[waiter].insert(holders.begin(), holders.end());
  }
}

std::vector<Edge> WaitForGraph::edges() const {
  std::vector<Edge> out;
  for (const auto& [waiter, holders] : adjacency_) {
    for (TxnId holder : holders) out.push_back(Edge{waiter, holder});
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.waiter != b.waiter ? a.waiter < b.waiter : a.holder < b.holder;
  });
  return out;
}

WaitForGraph WaitForGraph::from_edges(const std::vector<Edge>& edges) {
  WaitForGraph graph;
  for (const Edge& edge : edges) graph.add_edge(edge.waiter, edge.holder);
  return graph;
}

std::size_t WaitForGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& [waiter, holders] : adjacency_) {
    (void)waiter;
    total += holders.size();
  }
  return total;
}

std::vector<TxnId> WaitForGraph::holders_blocking(TxnId waiter) const {
  const auto it = adjacency_.find(waiter);
  if (it == adjacency_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::string WaitForGraph::to_string() const {
  std::string out;
  for (const Edge& edge : edges()) {
    // Separate appends: GCC 12 -Wrestrict false positive (PR105329).
    out += 't';
    out += std::to_string(edge.waiter);
    out += " -> t";
    out += std::to_string(edge.holder);
    out += '\n';
  }
  return out;
}

}  // namespace dtx::wfg
