// Wait-for graph: one per site, plus the union the distributed deadlock
// detector builds (Alg. 4: collect every site's graph, union them, abort the
// newest transaction on a cycle).
//
// Transaction ids are ordered by begin time (the DTX runtime packs a
// monotonic begin timestamp into the high bits), so "the most recent
// transaction involved in the circle" is simply the maximum id on the cycle.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "lock/lock_table.hpp"

namespace dtx::wfg {

using lock::TxnId;

/// A directed edge `waiter -> holder`.
struct Edge {
  TxnId waiter = 0;
  TxnId holder = 0;
  bool operator==(const Edge&) const = default;
};

class WaitForGraph {
 public:
  WaitForGraph() = default;

  /// Adds waiter -> holder edges (Alg. 3 l. 8). Self-edges are ignored.
  void add_edges(TxnId waiter, const std::vector<TxnId>& holders);
  void add_edge(TxnId waiter, TxnId holder);

  /// Drops all outgoing edges of `waiter` (it woke up or retried).
  void clear_waiter(TxnId waiter);

  /// Drops the transaction entirely (as waiter and as holder) — called on
  /// commit / abort.
  void remove_txn(TxnId txn);

  /// True when a cycle exists anywhere in the graph.
  [[nodiscard]] bool has_cycle() const;

  /// The transactions on some cycle (in cycle order); empty when acyclic.
  [[nodiscard]] std::vector<TxnId> find_cycle() const;

  /// The newest (maximum-id) transaction on some cycle; 0 when acyclic.
  [[nodiscard]] TxnId newest_on_cycle() const;

  /// Merges another graph into this one (wait-for graph union, Alg. 4 l. 5).
  void merge(const WaitForGraph& other);

  /// Flat edge list (stable order), used to ship graphs between sites.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Rebuilds from a flat edge list.
  static WaitForGraph from_edges(const std::vector<Edge>& edges);

  [[nodiscard]] bool empty() const noexcept { return adjacency_.empty(); }
  [[nodiscard]] std::size_t edge_count() const;

  /// Current holders a waiter is blocked on (empty set when not waiting).
  [[nodiscard]] std::vector<TxnId> holders_blocking(TxnId waiter) const;

  [[nodiscard]] std::string to_string() const;

 private:
  // waiter -> ordered set of holders (ordered for deterministic iteration).
  std::unordered_map<TxnId, std::set<TxnId>> adjacency_;
};

}  // namespace dtx::wfg
