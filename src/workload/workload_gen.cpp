#include "workload/workload_gen.hpp"

#include <cassert>

namespace dtx::workload {

using util::Rng;

WorkloadGenerator::WorkloadGenerator(const std::vector<Fragment>& fragments,
                                     WorkloadOptions options)
    : options_(options) {
  targets_.reserve(fragments.size());
  for (const Fragment& fragment : fragments) {
    Target target;
    target.doc = fragment.doc_name;
    target.section = fragment.section;
    target.continent = fragment.continent;
    target.ids = fragment.ids;
    targets_.push_back(std::move(target));
  }
  assert(!targets_.empty());
}

const WorkloadGenerator::Target& WorkloadGenerator::pick_target(Rng& rng) {
  return targets_[rng.next_index(targets_.size())];
}

std::string WorkloadGenerator::fresh_id(Rng& rng, const char* prefix) {
  return std::string(prefix) + "w" + std::to_string(insert_counter_++) + "x" +
         std::to_string(rng.next_below(1000000));
}

std::vector<std::string> WorkloadGenerator::make_transaction(
    Rng& rng, bool* is_update) {
  const bool update_txn = rng.next_bool(options_.update_txn_fraction);
  if (is_update != nullptr) *is_update = update_txn;
  std::vector<std::string> ops;
  ops.reserve(options_.ops_per_transaction);
  for (std::size_t i = 0; i < options_.ops_per_transaction; ++i) {
    const bool update_op =
        update_txn && rng.next_bool(options_.update_op_fraction);
    ops.push_back(update_op ? make_update(rng) : make_query(rng));
  }
  if (update_txn) {
    // Guarantee at least one update op per update transaction (a 20 % coin
    // over 5 ops would otherwise leave ~33 % of them read-only).
    bool has_update = false;
    for (const std::string& op : ops) {
      if (op.rfind("update ", 0) == 0) {
        has_update = true;
        break;
      }
    }
    if (!has_update) {
      ops[rng.next_index(ops.size())] = make_update(rng);
    }
  }
  return ops;
}

util::Result<client::PreparedTxn> WorkloadGenerator::make_prepared(
    Rng& rng, bool* is_update) {
  client::TxnBuilder builder;
  for (const std::string& text : make_transaction(rng, is_update)) {
    builder.op_text(text);
  }
  return builder.build();
}

std::string WorkloadGenerator::make_query(Rng& rng) {
  const Target& target = pick_target(rng);
  const bool scan = rng.next_bool(0.25);
  const std::string id =
      target.ids.empty() ? "none"
                         : target.ids[rng.next_index(target.ids.size())];

  if (target.section == "people") {
    if (scan) return "query " + target.doc + " /site/people/person/name";
    switch (rng.next_below(3)) {
      case 0:
        return "query " + target.doc + " /site/people/person[@id='" + id +
               "']/name";
      case 1:
        return "query " + target.doc + " /site/people/person[@id='" + id +
               "']/profile/age";
      default:
        return "query " + target.doc + " //person[@id='" + id +
               "']/emailaddress";
    }
  }
  if (target.section == "regions") {
    const std::string base = "/site/regions/" + target.continent + "/item";
    if (scan) return "query " + target.doc + " " + base + "/name";
    return "query " + target.doc + " " + base + "[@id='" + id + "']/" +
           (rng.next_bool(0.5) ? "price" : "name");
  }
  if (target.section == "open_auctions") {
    const std::string base = "/site/open_auctions/open_auction";
    if (scan) return "query " + target.doc + " " + base + "/current";
    return "query " + target.doc + " " + base + "[@id='" + id + "']/" +
           (rng.next_bool(0.7) ? "current" : "initial");
  }
  if (target.section == "closed_auctions") {
    const std::string base = "/site/closed_auctions/closed_auction";
    if (scan) return "query " + target.doc + " " + base + "/price";
    return "query " + target.doc + " " + base + "[@id='" + id + "']/price";
  }
  // categories
  if (scan) return "query " + target.doc + " /site/categories/category/name";
  return "query " + target.doc + " /site/categories/category[@id='" + id +
         "']/name";
}

std::string WorkloadGenerator::make_update(Rng& rng) {
  const Target& target = pick_target(rng);
  const std::string id =
      target.ids.empty() ? "none"
                         : target.ids[rng.next_index(target.ids.size())];
  // Mix: ~50 % insert, ~35 % change, ~15 % remove (of entities previously
  // inserted by the workload, so the base data set stays queryable).
  const double roll = rng.next_double();

  if (target.section == "people") {
    if (roll < 0.5) {
      const std::string new_id = fresh_id(rng, "person");
      inserted_ids_[target.doc].push_back(new_id);
      return "update " + target.doc + " insert into /site/people ::= " +
             "<person id=\"" + new_id + "\"><name>" + rng.next_word(4, 8) +
             "</name><phone>555-" + std::to_string(rng.next_below(10000)) +
             "</phone></person>";
    }
    auto& inserted = inserted_ids_[target.doc];
    if (roll >= 0.85 && !inserted.empty()) {
      // Remove an entity a previous insert of this workload created (the
      // base data set stays queryable).
      const std::size_t pick = rng.next_index(inserted.size());
      const std::string victim = inserted[pick];
      inserted.erase(inserted.begin() +
                     static_cast<std::ptrdiff_t>(pick));
      return "update " + target.doc + " remove /site/people/person[@id='" +
             victim + "']";
    }
    return "update " + target.doc + " change /site/people/person[@id='" +
           id + "']/phone ::= 555-" + std::to_string(rng.next_below(10000));
  }
  if (target.section == "regions") {
    const std::string base = "/site/regions/" + target.continent;
    if (roll < 0.5) {
      const std::string new_id = fresh_id(rng, "item");
      return "update " + target.doc + " insert into " + base + " ::= " +
             "<item id=\"" + new_id + "\"><name>" + rng.next_word(4, 10) +
             "</name><price>" +
             std::to_string(1 + rng.next_below(400)) + ".00</price></item>";
    }
    return "update " + target.doc + " change " + base + "/item[@id='" + id +
           "']/price ::= " + std::to_string(1 + rng.next_below(400)) + ".50";
  }
  if (target.section == "open_auctions") {
    const std::string base = "/site/open_auctions/open_auction";
    if (roll < 0.5) {
      return "update " + target.doc + " insert into " + base + "[@id='" + id +
             "'] ::= <bidder><date>15/06/2009</date><increase>" +
             std::to_string(1 + rng.next_below(50)) + ".00</increase></bidder>";
    }
    return "update " + target.doc + " change " + base + "[@id='" + id +
           "']/current ::= " + std::to_string(1 + rng.next_below(500)) + ".00";
  }
  if (target.section == "closed_auctions") {
    return "update " + target.doc +
           " change /site/closed_auctions/closed_auction[@id='" + id +
           "']/price ::= " + std::to_string(1 + rng.next_below(500)) + ".00";
  }
  // categories
  if (roll < 0.6) {
    const std::string new_id = fresh_id(rng, "category");
    return "update " + target.doc + " insert into /site/categories ::= " +
           "<category id=\"" + new_id + "\"><name>" + rng.next_word(4, 10) +
           "</name></category>";
  }
  return "update " + target.doc + " change /site/categories/category[@id='" +
         id + "']/name ::= " + rng.next_word(4, 10);
}

}  // namespace dtx::workload
