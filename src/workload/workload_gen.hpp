// Transaction workload generator: XMark queries adapted to the DTX XPath
// subset plus update operations, as in the paper's evaluation ("the XMark
// benchmark is extended, adapting its queries to the XPath language and
// adding update operations").
//
// Transactions come in two flavours:
//  * read transactions — every operation is a query;
//  * update transactions — a configurable fraction of operations are
//    updates (paper default: 20 % update operations per update transaction).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "client/txn_builder.hpp"
#include "util/rng.hpp"
#include "workload/fragmentation.hpp"

namespace dtx::workload {

struct WorkloadOptions {
  std::size_t ops_per_transaction = 5;
  /// Fraction of transactions that are update transactions.
  double update_txn_fraction = 0.0;
  /// Fraction of update operations inside an update transaction.
  double update_op_fraction = 0.2;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const std::vector<Fragment>& fragments,
                    WorkloadOptions options);

  /// Builds one transaction (list of textual operations — the workload
  /// file format). Deterministic given the Rng state. Sets *is_update when
  /// non-null.
  std::vector<std::string> make_transaction(util::Rng& rng,
                                            bool* is_update = nullptr);

  /// Typed variant: the same transaction parsed exactly once into an
  /// immutable client::PreparedTxn (what DTXTester submits). The generator
  /// only emits well-formed operations, so failure here is a bug.
  util::Result<client::PreparedTxn> make_prepared(util::Rng& rng,
                                                  bool* is_update = nullptr);

  [[nodiscard]] const WorkloadOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Metadata-only view of a fragment (no XML payload).
  struct Target {
    std::string doc;
    std::string section;
    std::string continent;
    std::vector<std::string> ids;
  };

  std::string make_query(util::Rng& rng);
  std::string make_update(util::Rng& rng);
  const Target& pick_target(util::Rng& rng);
  std::string fresh_id(util::Rng& rng, const char* prefix);

  std::vector<Target> targets_;
  WorkloadOptions options_;
  std::uint64_t insert_counter_ = 0;
  /// Ids this generator has emitted inserts for (per section); removes draw
  /// from here so they target data that plausibly exists. A remove racing
  /// its insert (different transactions) simply affects zero nodes — the
  /// locks are still exercised.
  std::map<std::string, std::vector<std::string>> inserted_ids_;
};

}  // namespace dtx::workload
