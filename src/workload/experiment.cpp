#include "workload/experiment.hpp"

#include <algorithm>
#include <cstdlib>

namespace dtx::workload {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  workload::XmarkOptions xmark;
  xmark.target_bytes = config.doc_bytes;
  xmark.seed = config.seed;
  const workload::XmarkData data = workload::generate_xmark(xmark);

  const std::size_t fragment_count =
      config.fragment_count != 0 ? config.fragment_count : 2 * config.sites;
  const auto fragments = workload::fragment_xmark(data, fragment_count);
  const auto placements = workload::place_fragments(
      fragments, config.sites, config.replication, config.copies);

  core::ClusterOptions cluster_options;
  cluster_options.site_count = config.sites;
  cluster_options.protocol = config.protocol;
  cluster_options.network.latency = config.latency;
  cluster_options.site.detect_period = config.detect_period;
  cluster_options.site.retry_interval = config.retry_interval;
  cluster_options.site.poll_interval = std::chrono::microseconds(500);
  cluster_options.site.coordinator_workers = config.coordinator_workers;
  cluster_options.site.participant_workers = config.participant_workers;
  cluster_options.site.lock_shards = config.lock_shards;
  cluster_options.site.plan_cache_capacity = config.plan_cache_capacity;
  cluster_options.site.checkpoint_interval = config.checkpoint_interval;
  cluster_options.site.snapshot_reads = config.snapshot_reads;
  cluster_options.site.snapshot_chain_depth = config.snapshot_chain_depth;
  core::Cluster cluster(cluster_options);

  for (const auto& placement : placements) {
    const auto it = std::find_if(
        fragments.begin(), fragments.end(),
        [&](const workload::Fragment& f) { return f.doc_name == placement.doc; });
    const util::Status status =
        cluster.load_document(placement.doc, it->xml, placement.sites);
    if (!status) {
      std::fprintf(stderr, "load_document failed: %s\n",
                   status.to_string().c_str());
      std::abort();
    }
  }
  const util::Status started = cluster.start();
  if (!started) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 started.to_string().c_str());
    std::abort();
  }

  workload::WorkloadOptions workload_options;
  workload_options.ops_per_transaction = config.ops_per_txn;
  workload_options.update_txn_fraction = config.update_txn_fraction;
  workload_options.update_op_fraction = config.update_op_fraction;

  workload::TesterOptions tester_options;
  tester_options.clients = config.clients;
  tester_options.txns_per_client = config.txns_per_client;
  tester_options.seed = config.seed + 1;
  tester_options.routing = config.routing;

  ExperimentResult result;
  result.report =
      workload::run_tester(cluster, fragments, workload_options,
                           tester_options);
  result.cluster = cluster.stats();
  result.mean_response_ms = result.report.response_ms.empty()
                                ? 0.0
                                : result.report.response_ms.mean();
  result.deadlocks = static_cast<std::size_t>(result.cluster.deadlock_aborts);
  result.lock_acquisitions = result.cluster.lock_acquisitions;
  result.makespan_s = result.report.makespan_s;
  cluster.stop();
  return result;
}

void apply_common_flags(const util::Flags& flags, ExperimentConfig& config) {
  config.sites = static_cast<std::size_t>(
      flags.get_int("sites", static_cast<std::int64_t>(config.sites)));
  config.doc_bytes = static_cast<std::size_t>(
      flags.get_int("doc_kb",
                    static_cast<std::int64_t>(config.doc_bytes / 1024)) *
      1024);
  config.clients = static_cast<std::size_t>(
      flags.get_int("clients", static_cast<std::int64_t>(config.clients)));
  config.txns_per_client = static_cast<std::size_t>(flags.get_int(
      "txns", static_cast<std::int64_t>(config.txns_per_client)));
  config.ops_per_txn = static_cast<std::size_t>(
      flags.get_int("ops", static_cast<std::int64_t>(config.ops_per_txn)));
  config.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.latency = std::chrono::microseconds(
      flags.get_int("latency_us", config.latency.count()));
  config.update_txn_fraction =
      flags.get_double("update_txn_fraction", config.update_txn_fraction);
  config.update_op_fraction =
      flags.get_double("update_op_fraction", config.update_op_fraction);
  // Clamp the engine knobs: a negative flag value must not wrap into an
  // absurd thread / shard count through the size_t cast.
  const auto clamped_knob = [&](const char* name, std::size_t fallback) {
    return static_cast<std::size_t>(std::clamp<std::int64_t>(
        flags.get_int(name, static_cast<std::int64_t>(fallback)), 1, 4096));
  };
  config.coordinator_workers =
      clamped_knob("workers", config.coordinator_workers);
  config.participant_workers =
      clamped_knob("participant_workers", config.participant_workers);
  config.lock_shards = clamped_knob("lock_shards", config.lock_shards);
  // 0 is meaningful here (plan caching off), so no floor of 1.
  config.plan_cache_capacity = static_cast<std::size_t>(
      std::clamp<std::int64_t>(
          flags.get_int("plan_cache",
                        static_cast<std::int64_t>(config.plan_cache_capacity)),
          0, 1 << 20));
  // 0 is meaningful here too (never compact the redo logs).
  config.checkpoint_interval = static_cast<std::size_t>(
      std::clamp<std::int64_t>(
          flags.get_int("checkpoint_interval",
                        static_cast<std::int64_t>(config.checkpoint_interval)),
          0, 1 << 20));

  config.snapshot_reads =
      flags.get_int("snapshot_reads", config.snapshot_reads ? 1 : 0) != 0;
  // 0 is meaningful (unbounded chain until checkpoint pruning).
  config.snapshot_chain_depth = static_cast<std::size_t>(
      std::clamp<std::int64_t>(
          flags.get_int("snapshot_chain",
                        static_cast<std::int64_t>(config.snapshot_chain_depth)),
          0, 1 << 20));

  const auto routing = client::parse_routing_kind(flags.get_string(
      "routing", client::routing_kind_name(config.routing)));
  if (!routing) {
    std::fprintf(stderr, "--routing: %s\n",
                 routing.status().to_string().c_str());
    std::abort();
  }
  config.routing = routing.value();

  // --replication=N: N replicas per fragment (partial replication);
  // 0 = a copy at every site (full replication). Unset keeps the bench's
  // own default.
  const std::int64_t replication = flags.get_int("replication", -1);
  if (replication == 0) {
    config.replication = workload::Replication::kTotal;
  } else if (replication > 0) {
    config.replication = workload::Replication::kPartial;
    config.copies = static_cast<std::size_t>(replication);
  }
}

void print_header(const char* figure, const char* x_label) {
  std::printf("# %s\n", figure);
  std::printf("%-14s %-10s %14s %14s %12s %12s %12s %12s %12s\n", x_label,
              "protocol", "resp_mean_ms", "resp_p95_ms", "deadlocks",
              "committed", "aborted", "lock_acqs", "makespan_s");
}

void print_row(const std::string& x_value, const char* protocol,
               const ExperimentResult& result) {
  const double p95 = result.report.response_ms.empty()
                         ? 0.0
                         : result.report.response_ms.percentile(0.95);
  std::printf("%-14s %-10s %14.2f %14.2f %12zu %12zu %12zu %12llu %12.2f\n",
              x_value.c_str(), protocol, result.mean_response_ms, p95,
              result.deadlocks, result.report.committed,
              result.report.aborted + result.report.failed,
              static_cast<unsigned long long>(result.lock_acquisitions),
              result.makespan_s);
  std::fflush(stdout);
}

void print_json_row(const char* figure, const ExperimentConfig& config,
                    const ExperimentResult& result) {
  const double makespan =
      result.makespan_s > 0.0 ? result.makespan_s : 1e-9;
  const double committed_ops =
      static_cast<double>(result.report.committed * config.ops_per_txn);
  const double p95 = result.report.response_ms.empty()
                         ? 0.0
                         : result.report.response_ms.percentile(0.95);
  std::printf(
      "{\"figure\":\"%s\",\"protocol\":\"%s\",\"routing\":\"%s\","
      "\"workers\":%zu,"
      "\"participant_workers\":%zu,\"shards\":%zu,\"sites\":%zu,"
      "\"clients\":%zu,\"ops_per_txn\":%zu,\"update_txn_fraction\":%.3f,"
      "\"submitted\":%zu,\"committed\":%zu,\"aborted\":%zu,\"failed\":%zu,"
      "\"deadlocks\":%zu,\"txn_per_s\":%.2f,\"ops_per_s\":%.2f,"
      "\"resp_mean_ms\":%.3f,\"resp_p95_ms\":%.3f,\"lock_acqs\":%llu,"
      "\"plan_cache\":%zu,\"plan_hits\":%llu,\"plan_misses\":%llu,"
      "\"plan_evictions\":%llu,\"snapshot_reads\":%d,"
      "\"snapshot_txns\":%llu,\"snapshot_views\":%llu,"
      "\"snapshot_chain_hits\":%llu,\"snapshot_materializes\":%llu,"
      "\"snapshot_chain_bytes_peak\":%llu,"
      "\"replication\":%zu,\"catalog_epoch\":%llu,"
      "\"stale_catalog_aborts\":%llu,\"migrations\":%llu,"
      "\"migrated_bytes\":%llu,\"net_messages\":%llu,\"net_bytes\":%llu,"
      "\"net_dropped\":%llu,\"makespan_s\":%.3f}\n",
      figure, lock::protocol_kind_name(config.protocol),
      client::routing_kind_name(config.routing),
      config.coordinator_workers, config.participant_workers,
      config.lock_shards, config.sites, config.clients, config.ops_per_txn,
      config.update_txn_fraction, result.report.submitted,
      result.report.committed, result.report.aborted, result.report.failed,
      result.deadlocks,
      static_cast<double>(result.report.committed) / makespan,
      committed_ops / makespan, result.mean_response_ms, p95,
      static_cast<unsigned long long>(result.lock_acquisitions),
      config.plan_cache_capacity,
      static_cast<unsigned long long>(result.cluster.plan_cache.hits),
      static_cast<unsigned long long>(result.cluster.plan_cache.misses),
      static_cast<unsigned long long>(result.cluster.plan_cache.evictions),
      config.snapshot_reads ? 1 : 0,
      static_cast<unsigned long long>(result.cluster.snapshot_txns),
      static_cast<unsigned long long>(result.cluster.snapshots.reads),
      static_cast<unsigned long long>(result.cluster.snapshots.chain_hits),
      static_cast<unsigned long long>(result.cluster.snapshots.materializes),
      static_cast<unsigned long long>(result.cluster.snapshots.chain_bytes_peak),
      config.replication == workload::Replication::kTotal ? config.sites
                                                         : config.copies,
      static_cast<unsigned long long>(result.cluster.catalog_epoch),
      static_cast<unsigned long long>(result.cluster.stale_catalog_aborts),
      static_cast<unsigned long long>(result.cluster.migrations),
      static_cast<unsigned long long>(result.cluster.migrated_bytes),
      static_cast<unsigned long long>(result.cluster.network.messages_sent),
      static_cast<unsigned long long>(result.cluster.network.bytes_sent),
      static_cast<unsigned long long>(result.cluster.network.messages_dropped),
      makespan);
  std::fflush(stdout);
}

}  // namespace dtx::workload
