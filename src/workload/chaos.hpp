// ChaosRunner: seeded fault-schedule soak over a live DTX cluster.
//
// The runner drives an insert / change / read workload (the fig9 shape:
// concurrent clients, a handful of operations per transaction) through a
// totally-replicated cluster while a schedule derived from one seed
// crashes sites, partitions links and degrades the LAN (FaultPlan). After
// every recovery it drains the cluster and asserts the hygiene invariants
// of consistency_test — no dangling locks, undo logs empty — and at the
// end, after a final recovery sweep, the strong ones: every replica of
// every document byte-identical, every committed insert present, nothing
// present that was neither committed nor left indeterminate by a fault.
//
// Outcome bookkeeping: a transaction that terminates with
// txn::AbortReason::kSiteFailure (or TxnState::kFailed) may have passed
// its commit decision just before the fault hit, so its effects are
// tracked as *indeterminate* — allowed but not required in the final
// state. Every other abort reason is deterministic rollback.
//
// Determinism: the fault schedule (which site crashes, which pair
// partitions, in which round) and every workload stream are pure functions
// of `seed`. Commit/abort outcomes still depend on thread interleaving —
// the run is schedule-deterministic, not trace-deterministic.
//
// Debugging: set DTX_CHAOS_DUMP=<dir> to write the raw XML of diverging
// replicas into <dir> and emit one JSONL line per client transaction
// (site, insert id / change value, state, abort reason) to the `jsonl`
// sink — the nightly workflow captures both as artifacts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dtx/cluster.hpp"
#include "net/fault_plan.hpp"

namespace dtx::workload {

struct ChaosOptions {
  std::size_t sites = 3;
  lock::ProtocolKind protocol = lock::ProtocolKind::kXdgl;
  std::uint64_t seed = 1;
  /// Fault rounds: traffic -> inject -> hold -> heal+restart -> drain+check.
  std::size_t rounds = 4;
  std::size_t clients = 4;
  /// Traffic window before the faults of a round are injected.
  std::chrono::milliseconds traffic_window{150};
  /// How long an injected crash / partition holds before recovery.
  std::chrono::milliseconds fault_hold{150};
  /// Per-round probability that a random site crashes / a random pair
  /// partitions (both can fire in the same round).
  double crash_probability = 0.7;
  double partition_probability = 0.7;
  /// Background LAN degradation applied to every link for the whole run.
  net::LinkFault background_fault;
  /// Deadline for the post-recovery drain (locks + undo logs reaching 0).
  std::chrono::milliseconds drain_deadline{10'000};
  /// Engine timeouts sized so failure detection fits a round. The probe
  /// budget (orphan_query_limit * orphan_txn_timeout) must comfortably
  /// outlive fault_hold + restart: a participant that exhausts its probes
  /// while the coordinator is briefly down would roll back a transaction
  /// whose durable commit record the restarted coordinator could still
  /// have served.
  std::chrono::microseconds response_timeout{250'000};
  std::chrono::microseconds orphan_txn_timeout{120'000};
  std::uint32_t orphan_query_limit = 6;
  std::uint32_t commit_ack_rounds = 3;
  /// Redo-log compaction cadence (SiteOptions::checkpoint_interval). The
  /// soak default of 8 forces frequent checkpoints so crashes land inside
  /// and around compactions; 0 = never compact (pure log replay), 1 ≈ the
  /// historical snapshot-per-commit shape.
  std::size_t checkpoint_interval = 8;
  /// Fraction of client transactions that are pure read-only — the MVCC
  /// snapshot path when snapshot_reads is on. The write share keeps the
  /// historical 62.5 / 37.5 insert / change split, so the default 0.2
  /// reproduces the original 0.5 / 0.3 / 0.2 mix exactly. Read-only
  /// transactions run the same query twice and the runner asserts both
  /// executions saw identical rows (one consistent cut, never torn —
  /// including across crash / recovery).
  double read_fraction = 0.2;
  /// MVCC snapshot reads (SiteOptions::snapshot_reads); false = locked
  /// read baseline.
  bool snapshot_reads = true;
  /// Membership churn: alternate rounds add a site (replica migration onto
  /// the joiner) and decommission the newest joiner again, while traffic
  /// flows and the background faults apply. The original sites never
  /// leave, so the final accounting still reads site 0's store.
  bool membership_churn = false;
  std::chrono::microseconds latency{100};
  /// When set, one JSON line per schedule event / round check / summary.
  std::FILE* jsonl = nullptr;
};

struct ChaosReport {
  std::size_t rounds = 0;
  std::size_t crashes = 0;
  std::size_t partitions = 0;
  std::size_t joins = 0;   ///< membership churn: sites added
  std::size_t leaves = 0;  ///< membership churn: joiners decommissioned
  std::size_t submitted = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;       ///< deterministic rollback
  std::size_t indeterminate = 0; ///< kSiteFailure / kFailed — maybe applied
  core::ClusterStats cluster;
  bool invariants_ok = true;
  std::vector<std::string> violations;
};

/// Runs the soak; returns the report (violations listed, never thrown).
ChaosReport run_chaos(const ChaosOptions& options);

}  // namespace dtx::workload
