#include "workload/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "client/client.hpp"
#include "dtx/wal.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx::workload {

namespace {

using core::Cluster;
using core::ClusterOptions;
using net::SiteId;
using txn::TxnState;
namespace wal = core::wal;

constexpr const char* kSharedDoc = "d0";
constexpr const char* kBaseXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "<person id=\"p3\"><name>Carla</name><phone>333</phone></person>"
    "</people></site>";

/// One round of the precomputed fault schedule.
struct RoundPlan {
  bool crash = false;
  SiteId crash_site = 0;
  bool partition = false;
  SiteId partition_a = 0;
  SiteId partition_b = 0;
};

/// Shared outcome bookkeeping. An effect lands in `committed` when the
/// client saw kCommitted, in `indeterminate` when the abort reason was
/// kSiteFailure (or the state kFailed) — the fault may have hit after the
/// commit decision — and nowhere when the rollback was deterministic.
struct Tracker {
  std::mutex mutex;
  std::set<std::string> committed_inserts;
  std::set<std::string> indeterminate_inserts;
  std::set<std::string> committed_values;
  std::set<std::string> indeterminate_values;
  std::size_t submitted = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t indeterminate = 0;
  /// Snapshot-consistency failures observed by read-only clients (the
  /// repeated query of one transaction returned different rows).
  std::vector<std::string> torn_reads;
};

/// Traffic gate: clients run only while open; pause() blocks until every
/// client finished its in-flight transaction.
struct TrafficGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  bool shutdown = false;
  std::size_t in_flight = 0;

  /// Returns false when the runner is shutting down.
  bool enter() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open || shutdown; });
    if (shutdown) return false;
    ++in_flight;
    return true;
  }
  void leave() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      --in_flight;
    }
    cv.notify_all();
  }
  void resume() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void pause() {
    std::unique_lock<std::mutex> lock(mutex);
    open = false;
    cv.wait(lock, [&] { return in_flight == 0; });
  }
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
      open = false;
    }
    cv.notify_all();
  }
};

/// Which sites are currently up (clients route around crashed sites).
struct UpSites {
  std::mutex mutex;
  std::set<SiteId> up;

  void set(SiteId site, bool is_up) {
    std::lock_guard<std::mutex> lock(mutex);
    if (is_up) {
      up.insert(site);
    } else {
      up.erase(site);
    }
  }
  SiteId pick(util::Rng& rng, std::size_t sites) {
    std::lock_guard<std::mutex> lock(mutex);
    if (up.empty()) return static_cast<SiteId>(rng.next_index(sites));
    auto it = up.begin();
    std::advance(it, static_cast<long>(rng.next_index(up.size())));
    return *it;
  }
};

void emit(std::FILE* jsonl, const std::string& line) {
  if (jsonl == nullptr) return;
  std::fprintf(jsonl, "%s\n", line.c_str());
  std::fflush(jsonl);
}

std::string bool_str(bool value) { return value ? "true" : "false"; }

/// Client worker: generates transactions from its own seeded stream while
/// the gate is open; classifies every outcome into the tracker.
void client_loop(std::size_t index, const ChaosOptions& options,
                 Cluster& cluster, client::Client& client, TrafficGate& gate,
                 UpSites& up_sites, Tracker& tracker, std::FILE* trace) {
  util::Rng rng(options.seed * 7919 + index * 104'729 + 17);
  std::uint64_t counter = 0;
  while (gate.enter()) {
    const std::uint64_t serial = counter++;
    const double roll = rng.next_double();
    client::TxnBuilder builder;
    std::string insert_id;
    std::string change_value;
    bool read_only = false;
    // Write share split 62.5 / 37.5 into inserts / changes, so the default
    // read_fraction of 0.2 reproduces the historical 0.5 / 0.3 / 0.2 mix.
    const double write_span = 1.0 - options.read_fraction;
    if (roll < write_span * 0.625) {
      insert_id = "c" + std::to_string(index) + "_" + std::to_string(serial);
      builder.query(kSharedDoc, "/site/people/person/name")
          .insert(kSharedDoc, "/site/people",
                  "<person id=\"" + insert_id + "\"><name>x</name></person>");
    } else if (roll < write_span) {
      const std::string person =
          "p" + std::to_string(1 + rng.next_index(3));
      change_value =
          "v" + std::to_string(index) + "_" + std::to_string(serial);
      builder.change(kSharedDoc,
                     "/site/people/person[@id='" + person + "']/phone",
                     change_value);
    } else {
      // Torn-read probe: the same query twice in one read-only
      // transaction. Both executions must see the identical rows — the
      // snapshot path serves one consistent cut, the locked path holds
      // the read locks across the transaction.
      read_only = true;
      builder.query(kSharedDoc, "/site/people/person/phone")
          .query(kSharedDoc, "/site/people/person/phone");
    }
    auto prepared = builder.build();
    const SiteId site = up_sites.pick(rng, cluster.site_count());

    client::SessionOptions session_options;
    session_options.routing = client::RoutingPolicy::explicit_site(site);
    // The paper leaves deadlock resubmission to the application; the
    // typed client automates it (RetryPolicy). Site failures are NOT
    // auto-retried here: their outcome is indeterminate and a blind
    // resubmit could double-apply.
    session_options.retry.max_deadlock_retries = 2;
    session_options.retry.backoff = std::chrono::microseconds(500);
    client::Session session = client.session(session_options);
    auto result = prepared ? session.execute(prepared.value())
                           : util::Result<txn::TxnResult>(prepared.status());

    if (trace != nullptr) {
      std::lock_guard<std::mutex> lock(tracker.mutex);
      std::fprintf(
          trace,
          "{\"event\":\"txn\",\"site\":%u,\"insert\":\"%s\",\"change\":"
          "\"%s\",\"state\":\"%s\",\"reason\":\"%s\",\"id\":%llu}\n",
          site, insert_id.c_str(), change_value.c_str(),
          result ? txn::txn_state_name(result.value().state) : "rejected",
          result ? txn::abort_reason_name(result.value().reason) : "-",
          result ? static_cast<unsigned long long>(result.value().id) : 0ULL);
      std::fflush(trace);
    }
    std::lock_guard<std::mutex> lock(tracker.mutex);
    ++tracker.submitted;
    if (!result) {
      ++tracker.aborted;  // rejected before submission (cluster down etc.)
    } else if (result.value().state == TxnState::kCommitted) {
      ++tracker.committed;
      if (!insert_id.empty()) tracker.committed_inserts.insert(insert_id);
      if (!change_value.empty()) tracker.committed_values.insert(change_value);
      if (read_only && result.value().rows.size() == 2 &&
          result.value().rows[0] != result.value().rows[1]) {
        tracker.torn_reads.push_back(
            "torn read: txn " + std::to_string(result.value().id) +
            " saw different rows for the same query (" +
            std::to_string(result.value().rows[0].size()) + " vs " +
            std::to_string(result.value().rows[1].size()) + " rows)");
      }
    } else if (result.value().state == TxnState::kFailed ||
               result.value().reason == txn::AbortReason::kSiteFailure) {
      ++tracker.indeterminate;
      if (!insert_id.empty()) {
        tracker.indeterminate_inserts.insert(insert_id);
      }
      if (!change_value.empty()) {
        tracker.indeterminate_values.insert(change_value);
      }
    } else {
      ++tracker.aborted;  // deterministic rollback (deadlock, parse, ...)
    }
    gate.leave();
  }
}

/// Polls until every site is idle (no locks, no undo logs) or the deadline
/// passes. Returns the violation text, empty when drained.
std::string await_drain(Cluster& cluster, std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  std::string last;
  for (;;) {
    last.clear();
    for (SiteId site = 0; site < cluster.site_count(); ++site) {
      // Decommissioned joiners (membership churn) stay stopped; their
      // lock tables were drained as part of the leave.
      if (!cluster.site_running(site)) continue;
      const std::size_t locks = cluster.site(site).lock_manager().lock_entries();
      const std::size_t undo =
          cluster.site(site).lock_manager().undo_log_count();
      if (locks != 0 || undo != 0) {
        last = "site " + std::to_string(site) + ": " +
               std::to_string(locks) + " dangling locks, " +
               std::to_string(undo) + " live undo logs";
        break;
      }
    }
    if (last.empty()) return last;
    if (std::chrono::steady_clock::now() >= until) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Order-insensitive structural fingerprint: XDGL's SI lock deliberately
/// lets independent transactions insert under the same node concurrently,
/// so replicas may interleave siblings differently; content must agree as
/// a multiset at every level (the dtx_test replica invariant).
std::string fingerprint(const xml::Node& node) {
  std::string out =
      node.is_element() ? "<" + node.name() : "#t:" + node.value();
  if (node.is_element()) {
    auto attributes = node.attributes();
    std::sort(attributes.begin(), attributes.end());
    for (const auto& [k, v] : attributes) out += " " + k + "=" + v;
    std::vector<std::string> children;
    children.reserve(node.child_count());
    for (const auto& child : node.children()) {
      children.push_back(fingerprint(*child));
    }
    std::sort(children.begin(), children.end());
    out += "{";
    for (const auto& child : children) out += child + ",";
    out += "}>";
  }
  return out;
}

/// Compares every replica of every document structurally. The committed
/// truth of a replica is its checkpoint snapshot + replayed redo-log tail
/// (wal::materialize); callers ensure quiescence.
std::string check_replica_agreement(Cluster& cluster) {
  for (const std::string& doc : cluster.catalog().documents()) {
    std::string reference;
    SiteId reference_site = 0;
    for (SiteId site : cluster.catalog().sites_of(doc)) {
      auto xml_text = wal::materialize(cluster.store_of(site), doc);
      auto parsed = xml_text
                        ? xml::parse(xml_text.value(), doc)
                        : util::Result<std::unique_ptr<xml::Document>>(
                              xml_text.status());
      if (!parsed) {
        return "replica of " + doc + " unreadable at site " +
               std::to_string(site);
      }
      const std::string print = fingerprint(*parsed.value()->root());
      if (reference.empty()) {
        reference = print;
        reference_site = site;
      } else if (print != reference) {
        std::string detail = "replica divergence on " + doc + ": site " +
                             std::to_string(site) + " != site " +
                             std::to_string(reference_site) + " (versions";
        for (SiteId peer : cluster.catalog().sites_of(doc)) {
          detail += " s" + std::to_string(peer) + "=v" +
                    std::to_string(
                        wal::durable_version(cluster.store_of(peer), doc));
        }
        detail += ")";
        if (const char* dump = std::getenv("DTX_CHAOS_DUMP")) {
          for (SiteId peer : cluster.catalog().sites_of(doc)) {
            auto bytes = wal::materialize(cluster.store_of(peer), doc);
            if (!bytes) continue;
            const std::string path = std::string(dump) + "/chaos_" + doc +
                                     "_s" + std::to_string(peer) + ".xml";
            if (std::FILE* file = std::fopen(path.c_str(), "w")) {
              std::fwrite(bytes.value().data(), 1, bytes.value().size(),
                          file);
              std::fclose(file);
            }
          }
        }
        return detail;
      }
    }
  }
  return "";
}

}  // namespace

ChaosReport run_chaos(const ChaosOptions& options) {
  ChaosReport report;
  report.rounds = options.rounds;

  // --- deterministic fault schedule ----------------------------------------
  util::Rng schedule_rng(options.seed);
  std::vector<RoundPlan> schedule;
  schedule.reserve(options.rounds);
  for (std::size_t round = 0; round < options.rounds; ++round) {
    RoundPlan plan;
    plan.crash = schedule_rng.next_bool(options.crash_probability);
    plan.crash_site =
        static_cast<SiteId>(schedule_rng.next_index(options.sites));
    if (options.sites >= 2) {
      plan.partition = schedule_rng.next_bool(options.partition_probability);
      plan.partition_a =
          static_cast<SiteId>(schedule_rng.next_index(options.sites));
      plan.partition_b = static_cast<SiteId>(
          (plan.partition_a + 1 + schedule_rng.next_index(options.sites - 1)) %
          options.sites);
    }
    schedule.push_back(plan);
  }

  // --- cluster --------------------------------------------------------------
  ClusterOptions cluster_options;
  cluster_options.site_count = options.sites;
  cluster_options.protocol = options.protocol;
  cluster_options.network.latency = options.latency;
  cluster_options.site.poll_interval = std::chrono::microseconds(500);
  cluster_options.site.detect_period = std::chrono::microseconds(5'000);
  cluster_options.site.retry_interval = std::chrono::microseconds(10'000);
  cluster_options.site.max_wait_episodes = 50;
  cluster_options.site.response_timeout = options.response_timeout;
  cluster_options.site.orphan_txn_timeout = options.orphan_txn_timeout;
  cluster_options.site.orphan_query_limit = options.orphan_query_limit;
  cluster_options.site.commit_ack_rounds = options.commit_ack_rounds;
  cluster_options.site.checkpoint_interval = options.checkpoint_interval;
  cluster_options.site.snapshot_reads = options.snapshot_reads;
  Cluster cluster(cluster_options);

  std::vector<SiteId> all_sites;
  for (std::size_t site = 0; site < options.sites; ++site) {
    all_sites.push_back(static_cast<SiteId>(site));
  }
  if (!cluster.load_document(kSharedDoc, kBaseXml, all_sites).is_ok() ||
      !cluster.start().is_ok()) {
    report.invariants_ok = false;
    report.violations.push_back("cluster failed to start");
    return report;
  }
  if (!options.background_fault.benign()) {
    cluster.network().faults([&](net::FaultPlan& plan) {
      plan.seed(options.seed ^ 0x9e3779b97f4a7c15ULL);
      plan.set_default_fault(options.background_fault);
    });
  }

  emit(options.jsonl,
       "{\"event\":\"start\",\"seed\":" + std::to_string(options.seed) +
           ",\"sites\":" + std::to_string(options.sites) +
           ",\"rounds\":" + std::to_string(options.rounds) +
           ",\"clients\":" + std::to_string(options.clients) + "}");

  Tracker tracker;
  TrafficGate gate;
  UpSites up_sites;
  for (SiteId site : all_sites) up_sites.set(site, true);

  client::Client client(cluster);
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  std::FILE* trace =
      std::getenv("DTX_CHAOS_DUMP") != nullptr ? options.jsonl : nullptr;
  for (std::size_t index = 0; index < options.clients; ++index) {
    clients.emplace_back([&, index] {
      client_loop(index, options, cluster, client, gate, up_sites, tracker,
                  trace);
    });
  }

  const auto record_violation = [&](std::string text) {
    report.invariants_ok = false;
    emit(options.jsonl, "{\"event\":\"violation\",\"detail\":\"" + text +
                            "\"}");
    report.violations.push_back(std::move(text));
  };

  // --- rounds ---------------------------------------------------------------
  std::vector<SiteId> joiners;  // membership churn: joiners still in
  for (std::size_t round = 0; round < schedule.size(); ++round) {
    const RoundPlan& plan = schedule[round];
    gate.resume();

    // Membership churn runs at the start of the traffic window, while
    // clients write and the background link faults apply — but before this
    // round's crash / partition land, so the blocking join / decommission
    // protocols face lossy links, not dead members.
    if (options.membership_churn) {
      if (round % 2 == 0) {
        auto added = cluster.add_site();
        if (added.is_ok()) {
          joiners.push_back(added.value());
          up_sites.set(added.value(), true);
          ++report.joins;
          emit(options.jsonl,
               "{\"event\":\"join\",\"round\":" + std::to_string(round) +
                   ",\"site\":" + std::to_string(added.value()) + "}");
        } else {
          record_violation("round " + std::to_string(round) + ": add_site: " +
                           added.status().to_string());
        }
      } else if (!joiners.empty()) {
        const SiteId leaver = joiners.back();
        joiners.pop_back();
        up_sites.set(leaver, false);
        const util::Status removed = cluster.remove_site(leaver);
        if (removed.is_ok()) {
          ++report.leaves;
          emit(options.jsonl,
               "{\"event\":\"leave\",\"round\":" + std::to_string(round) +
                   ",\"site\":" + std::to_string(leaver) + "}");
        } else {
          record_violation("round " + std::to_string(round) +
                           ": remove_site(" + std::to_string(leaver) +
                           "): " + removed.to_string());
        }
      }
    }
    std::this_thread::sleep_for(options.traffic_window);

    // Inject.
    if (plan.crash) {
      up_sites.set(plan.crash_site, false);
      cluster.crash_site(plan.crash_site);
      ++report.crashes;
    }
    if (plan.partition) {
      cluster.network().partition_for(
          plan.partition_a, plan.partition_b,
          std::chrono::duration_cast<std::chrono::microseconds>(
              options.fault_hold));
      ++report.partitions;
    }
    emit(options.jsonl,
         "{\"event\":\"inject\",\"round\":" + std::to_string(round) +
             ",\"crash\":" + bool_str(plan.crash) + ",\"crash_site\":" +
             std::to_string(plan.crash_site) + ",\"partition\":" +
             bool_str(plan.partition) + ",\"partition_a\":" +
             std::to_string(plan.partition_a) + ",\"partition_b\":" +
             std::to_string(plan.partition_b) + "}");

    std::this_thread::sleep_for(options.fault_hold);

    // Recover: lift partitions, restart the crashed site (its store is
    // caught up from the freshest peer replica first — Cluster recovery
    // sync), then drain and check the hygiene invariants.
    cluster.network().heal();
    if (plan.crash) {
      const util::Status restarted = cluster.restart_site(plan.crash_site);
      if (!restarted.is_ok()) {
        record_violation("restart of site " +
                         std::to_string(plan.crash_site) + " failed: " +
                         restarted.to_string());
      }
      up_sites.set(plan.crash_site, true);
    }
    gate.pause();

    std::string drain = await_drain(cluster, options.drain_deadline);
    if (!drain.empty()) {
      record_violation("round " + std::to_string(round) + ": " + drain);
    }
    if (plan.crash && drain.empty()) {
      // Catch-up pass: the mid-traffic restart may have adopted a store
      // snapshot containing changes of then-live transactions; now that
      // everything drained, a quiescent restart re-syncs the site against
      // the fully resolved peer state.
      cluster.crash_site(plan.crash_site);
      const util::Status resync = cluster.restart_site(plan.crash_site);
      if (!resync.is_ok()) {
        record_violation("round " + std::to_string(round) +
                         ": catch-up restart failed: " + resync.to_string());
      }
    }
    std::string agreement = check_replica_agreement(cluster);
    if (!agreement.empty()) {
      record_violation("round " + std::to_string(round) + ": " + agreement);
    }
    emit(options.jsonl,
         "{\"event\":\"recovered\",\"round\":" + std::to_string(round) +
             ",\"drained\":" + bool_str(drain.empty()) +
             ",\"replicas_agree\":" + bool_str(agreement.empty()) + "}");
  }

  gate.stop();
  for (std::thread& thread : clients) thread.join();

  {
    std::lock_guard<std::mutex> lock(tracker.mutex);
    for (const std::string& torn : tracker.torn_reads) {
      record_violation(torn);
    }
  }

  // --- final recovery sweep + strong invariants ------------------------------
  // Restarting every site one at a time runs the recovery sync for each,
  // converging any replica that a fault left stale (e.g. a participant
  // whose CommitAck round was cut short) before the final audit.
  for (SiteId site : all_sites) {
    cluster.crash_site(site);
    const util::Status restarted = cluster.restart_site(site);
    if (!restarted.is_ok()) {
      record_violation("final sweep: restart of site " +
                       std::to_string(site) + " failed: " +
                       restarted.to_string());
    }
  }
  std::string drain = await_drain(cluster, options.drain_deadline);
  if (!drain.empty()) record_violation("final: " + drain);
  std::string agreement = check_replica_agreement(cluster);
  if (!agreement.empty()) record_violation("final: " + agreement);

  // Insert / change accounting against the (now agreed) replica state.
  {
    auto stored = wal::materialize(cluster.store_of(0), kSharedDoc);
    auto parsed = stored ? xml::parse(stored.value(), kSharedDoc)
                         : util::Result<std::unique_ptr<xml::Document>>(
                               stored.status());
    if (!parsed) {
      record_violation("final: " + std::string(kSharedDoc) + " unreadable");
    } else {
      std::lock_guard<std::mutex> lock(tracker.mutex);
      auto id_path = xpath::parse("/site/people/person/@id");
      const auto ids =
          xpath::evaluate_strings(id_path.value(), *parsed.value());
      const std::set<std::string> present(ids.begin(), ids.end());
      for (const char* base : {"p1", "p2", "p3"}) {
        if (present.count(base) == 0) {
          record_violation("final: base person " + std::string(base) +
                           " lost");
        }
      }
      for (const std::string& id : tracker.committed_inserts) {
        if (present.count(id) == 0) {
          record_violation("lost update: committed insert " + id +
                           " absent");
        }
      }
      for (const std::string& id : present) {
        if (id.empty() || id.front() != 'c') continue;  // workload inserts
        if (tracker.committed_inserts.count(id) == 0 &&
            tracker.indeterminate_inserts.count(id) == 0) {
          record_violation("phantom insert: " + id +
                           " present but never reported committed");
        }
      }
      auto phone_path = xpath::parse("/site/people/person/phone");
      const auto phones =
          xpath::evaluate_strings(phone_path.value(), *parsed.value());
      for (const std::string& phone : phones) {
        const bool initial =
            phone == "111" || phone == "222" || phone == "333";
        if (!initial && tracker.committed_values.count(phone) == 0 &&
            tracker.indeterminate_values.count(phone) == 0) {
          record_violation("phantom change: phone value " + phone +
                           " was never reported committed");
        }
      }
    }
  }

  report.cluster = cluster.stats();
  {
    std::lock_guard<std::mutex> lock(tracker.mutex);
    report.submitted = tracker.submitted;
    report.committed = tracker.committed;
    report.aborted = tracker.aborted;
    report.indeterminate = tracker.indeterminate;
  }
  cluster.stop();

  emit(options.jsonl,
       "{\"event\":\"summary\",\"seed\":" + std::to_string(options.seed) +
           ",\"submitted\":" + std::to_string(report.submitted) +
           ",\"committed\":" + std::to_string(report.committed) +
           ",\"aborted\":" + std::to_string(report.aborted) +
           ",\"indeterminate\":" + std::to_string(report.indeterminate) +
           ",\"crashes\":" + std::to_string(report.crashes) +
           ",\"partitions\":" + std::to_string(report.partitions) +
           ",\"joins\":" + std::to_string(report.joins) +
           ",\"leaves\":" + std::to_string(report.leaves) +
           ",\"catalog_epoch\":" +
           std::to_string(report.cluster.catalog_epoch) +
           ",\"stale_catalog_aborts\":" +
           std::to_string(report.cluster.stale_catalog_aborts) +
           ",\"migrations\":" + std::to_string(report.cluster.migrations) +
           ",\"migrated_bytes\":" +
           std::to_string(report.cluster.migrated_bytes) +
           ",\"restarts\":" + std::to_string(report.cluster.restarts) +
           ",\"orphans_committed\":" +
           std::to_string(report.cluster.orphans_committed) +
           ",\"orphans_aborted\":" +
           std::to_string(report.cluster.orphans_aborted) +
           ",\"commit_resends\":" +
           std::to_string(report.cluster.commit_resends) +
           ",\"snapshot_txns\":" +
           std::to_string(report.cluster.snapshot_txns) +
           ",\"snapshot_chain_hits\":" +
           std::to_string(report.cluster.snapshots.chain_hits) +
           ",\"snapshot_materializes\":" +
           std::to_string(report.cluster.snapshots.materializes) +
           ",\"log_suffix_syncs\":" +
           std::to_string(report.cluster.log_suffix_syncs) +
           ",\"full_syncs\":" + std::to_string(report.cluster.full_syncs) +
           ",\"unclassified_aborts\":" +
           std::to_string(report.cluster.unclassified_aborts) +
           ",\"messages_dropped\":" +
           std::to_string(report.cluster.network.messages_dropped) +
           ",\"invariants_ok\":" + bool_str(report.invariants_ok) + "}");
  return report;
}

}  // namespace dtx::workload
