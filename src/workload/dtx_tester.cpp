#include "workload/dtx_tester.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/clock.hpp"

namespace dtx::workload {

std::vector<std::pair<double, std::size_t>> TesterReport::throughput_timeline(
    double interval_s) const {
  std::vector<std::pair<double, std::size_t>> out;
  if (observations.empty() || interval_s <= 0.0) return out;
  const std::size_t buckets = static_cast<std::size_t>(
                                  std::ceil(makespan_s / interval_s)) +
                              1;
  out.assign(buckets, {0.0, 0});
  for (std::size_t i = 0; i < buckets; ++i) {
    out[i].first = interval_s * static_cast<double>(i + 1);
  }
  for (const TxnObservation& obs : observations) {
    if (obs.state != txn::TxnState::kCommitted) continue;
    const auto bucket = static_cast<std::size_t>(obs.finish_s / interval_s);
    out[std::min(bucket, buckets - 1)].second += 1;
  }
  return out;
}

std::vector<std::pair<double, double>> TesterReport::concurrency_timeline(
    double interval_s) const {
  std::vector<std::pair<double, double>> out;
  if (observations.empty() || interval_s <= 0.0) return out;
  const std::size_t buckets = static_cast<std::size_t>(
                                  std::ceil(makespan_s / interval_s)) +
                              1;
  out.assign(buckets, {0.0, 0.0});
  for (std::size_t i = 0; i < buckets; ++i) {
    out[i].first = interval_s * static_cast<double>(i + 1);
  }
  // A transaction contributes to a bucket proportionally to its overlap.
  for (const TxnObservation& obs : observations) {
    for (std::size_t i = 0; i < buckets; ++i) {
      const double lo = interval_s * static_cast<double>(i);
      const double hi = lo + interval_s;
      const double overlap =
          std::min(obs.finish_s, hi) - std::max(obs.submit_s, lo);
      if (overlap > 0.0) out[i].second += overlap / interval_s;
    }
  }
  return out;
}

TesterReport run_tester(core::Cluster& cluster,
                        const std::vector<Fragment>& fragments,
                        const WorkloadOptions& workload,
                        const TesterOptions& options) {
  // Pre-generate every client's transactions (deterministic given the
  // seed; generation — including the one-time parse into PreparedTxn —
  // must not interleave with the timed run).
  WorkloadGenerator generator(fragments, workload);
  util::Rng rng(options.seed);
  struct PlannedTxn {
    client::PreparedTxn txn;
    bool update = false;
  };
  std::vector<std::vector<PlannedTxn>> plans(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    plans[c].resize(options.txns_per_client);
    for (std::size_t t = 0; t < options.txns_per_client; ++t) {
      auto prepared = generator.make_prepared(rng, &plans[c][t].update);
      if (!prepared) {
        // The generator only emits well-formed operations; this is a bug.
        std::fprintf(stderr, "workload generation failed: %s\n",
                     prepared.status().to_string().c_str());
        std::abort();
      }
      plans[c][t].txn = std::move(prepared).value();
    }
  }

  TesterReport report;
  report.submitted = options.clients * options.txns_per_client;
  std::mutex report_mutex;

  client::Client dtx_client(cluster);
  const util::Stopwatch clock;
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  const std::size_t sites = cluster.site_count();
  for (std::size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      // Per the paper's Fig. 12 accounting aborted transactions are not
      // resubmitted, so the session runs with the default (no-retry)
      // RetryPolicy.
      client::SessionOptions session_options;
      session_options.routing =
          options.routing == client::RoutingPolicy::Kind::kExplicit
              ? client::RoutingPolicy::explicit_site(
                    static_cast<net::SiteId>(c % sites))
              : client::RoutingPolicy{options.routing, 0};
      client::Session session = dtx_client.session(session_options);
      for (const PlannedTxn& planned : plans[c]) {
        const double submit_s = clock.elapsed_seconds();
        util::Stopwatch txn_clock;
        auto result = session.execute(planned.txn);
        const double finish_s = clock.elapsed_seconds();

        TxnObservation obs;
        obs.submit_s = submit_s;
        obs.finish_s = finish_s;
        obs.response_ms = txn_clock.elapsed_millis();
        obs.update_txn = planned.update;
        if (result.is_ok()) {
          obs.state = result.value().state;
          obs.reason = result.value().reason;
          obs.deadlock_victim = result.value().deadlock_victim;
        } else {
          obs.state = txn::TxnState::kFailed;
          obs.reason = txn::AbortReason::kSiteFailure;
        }
        std::lock_guard<std::mutex> lock(report_mutex);
        report.observations.push_back(obs);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  report.makespan_s = clock.elapsed_seconds();

  for (const TxnObservation& obs : report.observations) {
    switch (obs.state) {
      case txn::TxnState::kCommitted:
        ++report.committed;
        report.response_ms.add(obs.response_ms);
        break;
      case txn::TxnState::kFailed:
        ++report.failed;
        report.aborted_response_ms.add(obs.response_ms);
        break;
      default:
        ++report.aborted;
        report.aborted_response_ms.add(obs.response_ms);
        break;
    }
    if (obs.deadlock_victim) ++report.deadlock_victims;
  }
  return report;
}

}  // namespace dtx::workload
