// DTXTester (paper §3): "a client simulator ... the simulator generates the
// transactions according to certain parameters, sends them to DTX and
// collects the results at the end of each execution."
//
// M client threads each submit T transactions sequentially to their home
// site (round-robin across sites). Per the paper's Fig. 12 accounting,
// aborted transactions are *not* resubmitted — they count as not executed.
#pragma once

#include <cstdint>
#include <vector>

#include "client/client.hpp"
#include "dtx/cluster.hpp"
#include "util/histogram.hpp"
#include "workload/workload_gen.hpp"

namespace dtx::workload {

struct TesterOptions {
  std::size_t clients = 10;
  std::size_t txns_per_client = 5;
  std::uint64_t seed = 7;
  /// How each simulated client routes its transactions. kExplicit is the
  /// paper's model: client c is homed at site c % sites. The other kinds
  /// are applied as-is through the client::Session routing policies.
  client::RoutingPolicy::Kind routing =
      client::RoutingPolicy::Kind::kExplicit;
};

/// Per-transaction observation.
struct TxnObservation {
  double submit_s = 0.0;   ///< relative to tester start
  double finish_s = 0.0;
  double response_ms = 0.0;
  txn::TxnState state = txn::TxnState::kAborted;
  txn::AbortReason reason = txn::AbortReason::kNone;
  bool deadlock_victim = false;
  bool update_txn = false;
};

struct TesterReport {
  std::vector<TxnObservation> observations;
  util::Histogram response_ms;            ///< committed transactions
  util::Histogram aborted_response_ms;    ///< terminated-without-commit
  std::size_t submitted = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t failed = 0;
  std::size_t deadlock_victims = 0;
  double makespan_s = 0.0;

  /// Committed transactions per interval — the paper's Fig. 12 throughput
  /// series. Returns (interval_end_s, commits_in_interval).
  [[nodiscard]] std::vector<std::pair<double, std::size_t>>
  throughput_timeline(double interval_s) const;

  /// Mean number of in-flight transactions per interval — the paper's
  /// "concurrency degree".
  [[nodiscard]] std::vector<std::pair<double, double>>
  concurrency_timeline(double interval_s) const;
};

/// Runs the client simulation against a started cluster. Transactions are
/// pre-generated (deterministic under `options.seed`) and submitted by
/// `options.clients` concurrent client threads.
TesterReport run_tester(core::Cluster& cluster,
                        const std::vector<Fragment>& fragments,
                        const WorkloadOptions& workload,
                        const TesterOptions& options);

}  // namespace dtx::workload
