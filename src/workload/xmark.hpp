// XMark-like document generator. The paper evaluates DTX on data produced
// by the XMark benchmark (Schmidt et al., VLDB'02) — an Internet-auction
// site: regional item listings, registered people, open and closed auctions
// and a category graph. This generator reproduces that document shape from
// scratch with a byte-size target (the paper's bases: 40–200 MB; our scaled
// defaults: ~1–4 MB, see DESIGN.md §2).
//
// Deviations from stock XMark, chosen for the update workload:
//  * <item> carries a <price> leaf (stock XMark prices live only in
//    auctions; the paper's §2.4 store example updates product prices, and
//    change-price is the natural "change" operation of the workload);
//  * every entity (including closed auctions) carries an id attribute so
//    point queries and updates can address them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "xml/document.hpp"

namespace dtx::workload {

struct XmarkOptions {
  /// Approximate serialized size of the generated document.
  std::size_t target_bytes = 1'000'000;
  std::uint64_t seed = 42;
};

inline constexpr const char* kContinents[] = {"africa",  "asia",
                                              "australia", "europe",
                                              "namerica", "samerica"};
inline constexpr std::size_t kContinentCount = 6;

/// The generated document plus the entity-id inventory the workload
/// generator draws from.
struct XmarkData {
  std::unique_ptr<xml::Document> document;
  std::vector<std::string> person_ids;
  std::map<std::string, std::vector<std::string>> items_by_continent;
  std::vector<std::string> open_auction_ids;
  std::vector<std::string> closed_auction_ids;
  std::vector<std::string> category_ids;
};

XmarkData generate_xmark(const XmarkOptions& options);

}  // namespace dtx::workload
