// Fragmentation and allocation (paper §3.2): "the database was fragmented
// according to the approach proposed by [Kurita et al.]. In this approach
// the data is fragmented considering the structure and size of the
// document, so that each generated fragment has a similar size. ... all
// sites have similar volumes of data."
//
// A fragment is a self-contained document: the entity subtrees of one
// section wrapped in the original ancestor chain (<site><people>…), so the
// workload's absolute XPath expressions work unchanged against fragments.
#pragma once

#include <string>
#include <vector>

#include "net/message.hpp"
#include "workload/xmark.hpp"

namespace dtx::workload {

using net::SiteId;

struct Fragment {
  std::string doc_name;   ///< catalog / storage name ("f0", "f1", ...)
  std::string section;    ///< "people" | "regions" | "open_auctions" |
                          ///< "closed_auctions" | "categories"
  std::string continent;  ///< for "regions" fragments
  std::string xml;        ///< serialized fragment document
  std::size_t bytes = 0;
  std::vector<std::string> ids;  ///< entity ids contained in this fragment
};

/// Splits the generated XMark data into about `fragment_count` similar-size
/// fragments (never fewer than the number of non-empty sections; section
/// boundaries are respected so each fragment has a uniform inner structure).
std::vector<Fragment> fragment_xmark(const XmarkData& data,
                                     std::size_t fragment_count);

enum class Replication {
  kTotal,    ///< every fragment at every site
  kPartial,  ///< each fragment at `copies` sites, load-balanced
};

struct Placement {
  std::string doc;
  std::vector<SiteId> sites;
};

/// Computes the fragment -> sites map. Partial replication places copies
/// round-robin so per-site byte volumes stay balanced (the paper's stated
/// property); `copies` is clamped to the site count.
std::vector<Placement> place_fragments(const std::vector<Fragment>& fragments,
                                       std::size_t site_count,
                                       Replication replication,
                                       std::size_t copies = 2);

}  // namespace dtx::workload
