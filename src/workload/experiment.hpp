// Shared experiment harness for the figure-reproduction benches: builds an
// XMark base, fragments and places it, spins up a DTX cluster, drives it
// with DTXTester and returns the measurements the paper plots.
//
// Scaling note (DESIGN.md §2): the paper ran 40–200 MB bases on an 8-PC
// 100 Mbit LAN; these benches default to ~100–800 KB bases on the simulated
// LAN so a full figure regenerates in seconds. Every knob is a CLI flag
// (--doc_kb=, --clients=, ...) for larger runs.
#pragma once

#include <cstdio>
#include <string>

#include "dtx/cluster.hpp"
#include "lock/protocol.hpp"
#include "util/flags.hpp"
#include "workload/dtx_tester.hpp"
#include "workload/fragmentation.hpp"
#include "workload/workload_gen.hpp"
#include "workload/xmark.hpp"

namespace dtx::workload {

struct ExperimentConfig {
  std::size_t sites = 4;
  std::size_t doc_bytes = 200'000;
  /// Fragments ~ 2x sites keeps per-site volumes balanced.
  std::size_t fragment_count = 0;  ///< 0 = 2 * sites
  workload::Replication replication = workload::Replication::kPartial;
  std::size_t copies = 2;
  lock::ProtocolKind protocol = lock::ProtocolKind::kXdgl;

  std::size_t clients = 50;
  std::size_t txns_per_client = 5;
  std::size_t ops_per_txn = 5;
  double update_txn_fraction = 0.0;
  double update_op_fraction = 0.2;

  /// Staged-engine knobs (see SiteOptions): coordinator / participant worker
  /// pool sizes and lock-table shard count per site. The defaults of 1
  /// reproduce the paper's single-threaded scheduler.
  std::size_t coordinator_workers = 1;
  std::size_t participant_workers = 1;
  std::size_t lock_shards = 1;
  /// Per-site compiled-plan cache capacity (--plan_cache=; 0 = compile
  /// every execution — the parse-per-execute ablation baseline).
  std::size_t plan_cache_capacity = 1024;
  /// Redo-log checkpoint cadence in logged update ops
  /// (--checkpoint_interval=; 1 ≈ the historical snapshot-per-commit
  /// durability, 0 = never compact).
  std::size_t checkpoint_interval = 64;
  /// MVCC snapshot reads (--snapshot_reads=0|1): read-only transactions
  /// served lock-free from versioned snapshots. 0 = locked baseline (every
  /// query goes through the lock manager) — the ablation axis of
  /// bench/abl_snapshot_reads.
  bool snapshot_reads = true;
  /// Per-document version-chain depth bound (--snapshot_chain=; 0 = keep
  /// every version until checkpoint pruning).
  std::size_t snapshot_chain_depth = 32;

  /// Client routing policy (--routing=explicit|round-robin|affinity):
  /// explicit = the paper's home-site model, affinity = route each
  /// transaction to the site hosting most of its documents.
  client::RoutingPolicy::Kind routing =
      client::RoutingPolicy::Kind::kExplicit;

  std::uint64_t seed = 42;
  std::chrono::microseconds latency{100};
  std::chrono::microseconds detect_period{10'000};
  std::chrono::microseconds retry_interval{5'000};
};

struct ExperimentResult {
  workload::TesterReport report;
  core::ClusterStats cluster;
  double mean_response_ms = 0.0;   ///< committed transactions
  std::size_t deadlocks = 0;       ///< victim aborts (paper's deadlock count)
  std::uint64_t lock_acquisitions = 0;
  double makespan_s = 0.0;
};

/// Builds the cluster, runs DTXTester, tears everything down.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Applies the standard flag overrides shared by every figure bench.
void apply_common_flags(const util::Flags& flags, ExperimentConfig& config);

/// Prints the standard table header / row. `x_label` names the sweep axis.
void print_header(const char* figure, const char* x_label);
void print_row(const std::string& x_value, const char* protocol,
               const ExperimentResult& result);

/// Emits one machine-readable JSON line for a run (ops/s, txn/s, full
/// accounting) so successive PRs have a perf trajectory to diff against.
/// `figure` tags the emitting bench.
void print_json_row(const char* figure, const ExperimentConfig& config,
                    const ExperimentResult& result);

}  // namespace dtx::workload
