#include "workload/fragmentation.hpp"

#include <algorithm>
#include <cassert>

#include "xml/serializer.hpp"

namespace dtx::workload {

namespace {

/// One entity subtree awaiting assignment to a fragment.
struct Unit {
  std::string section;
  std::string continent;
  std::string id;
  std::string xml;
};

/// Serialized entity subtrees of one section container, in document order.
void collect_units(const xml::Node& container, const std::string& section,
                   const std::string& continent, std::vector<Unit>& out) {
  for (const auto& child : container.children()) {
    if (!child->is_element()) continue;
    Unit unit;
    unit.section = section;
    unit.continent = continent;
    const std::string* id = child->attribute("id");
    unit.id = id == nullptr ? "" : *id;
    unit.xml = xml::serialize(*child);
    out.push_back(std::move(unit));
  }
}

/// Wraps a run of units in the ancestor chain of their section.
std::string wrap_fragment(const std::string& section,
                          const std::string& continent,
                          const std::vector<const Unit*>& units) {
  std::string body;
  for (const Unit* unit : units) body += unit->xml;
  if (section == "regions") {
    return "<site><regions><" + continent + ">" + body + "</" + continent +
           "></regions></site>";
  }
  return "<site><" + section + ">" + body + "</" + section + "></site>";
}

}  // namespace

std::vector<Fragment> fragment_xmark(const XmarkData& data,
                                     std::size_t fragment_count) {
  assert(data.document != nullptr && data.document->has_root());
  const xml::Node* root = data.document->root();

  // Collect units grouped by (section, continent) in a stable order.
  struct Group {
    std::string section;
    std::string continent;
    std::vector<Unit> units;
  };
  std::vector<Group> groups;
  if (const xml::Node* regions = root->first_child_named("regions")) {
    for (const auto& continent : regions->children()) {
      if (!continent->is_element()) continue;
      Group group;
      group.section = "regions";
      group.continent = continent->name();
      collect_units(*continent, "regions", continent->name(), group.units);
      if (!group.units.empty()) groups.push_back(std::move(group));
    }
  }
  for (const char* section :
       {"categories", "people", "open_auctions", "closed_auctions"}) {
    if (const xml::Node* container = root->first_child_named(section)) {
      Group group;
      group.section = section;
      collect_units(*container, section, "", group.units);
      if (!group.units.empty()) groups.push_back(std::move(group));
    }
  }

  std::size_t total_bytes = 0;
  for (const Group& group : groups) {
    for (const Unit& unit : group.units) total_bytes += unit.xml.size();
  }
  fragment_count = std::max<std::size_t>(fragment_count, 1);
  const std::size_t target =
      std::max<std::size_t>(total_bytes / fragment_count, 1);

  // Greedy size-balanced cut inside each group (Kurita-style: similar-size
  // fragments respecting document structure). A small trailing run merges
  // into the group's previous fragment so no undersized remainder fragment
  // is emitted.
  std::vector<Fragment> fragments;
  for (const Group& group : groups) {
    std::vector<std::vector<const Unit*>> runs;
    std::vector<const Unit*> run;
    std::size_t run_bytes = 0;
    for (const Unit& unit : group.units) {
      run.push_back(&unit);
      run_bytes += unit.xml.size();
      if (run_bytes >= target) {
        runs.push_back(std::move(run));
        run.clear();
        run_bytes = 0;
      }
    }
    if (!run.empty()) {
      if (!runs.empty() && run_bytes < target / 2) {
        runs.back().insert(runs.back().end(), run.begin(), run.end());
      } else {
        runs.push_back(std::move(run));
      }
    }
    for (const auto& fragment_units : runs) {
      Fragment fragment;
      // Appends, not operator+: GCC 12 -Wrestrict false positive
      // (PR105329).
      fragment.doc_name = "f";
      fragment.doc_name += std::to_string(fragments.size());
      fragment.section = group.section;
      fragment.continent = group.continent;
      fragment.xml = wrap_fragment(group.section, group.continent,
                                   fragment_units);
      fragment.bytes = fragment.xml.size();
      for (const Unit* unit : fragment_units) {
        if (!unit->id.empty()) fragment.ids.push_back(unit->id);
      }
      fragments.push_back(std::move(fragment));
    }
  }
  return fragments;
}

std::vector<Placement> place_fragments(const std::vector<Fragment>& fragments,
                                       std::size_t site_count,
                                       Replication replication,
                                       std::size_t copies) {
  assert(site_count >= 1);
  std::vector<Placement> placements;
  placements.reserve(fragments.size());

  if (replication == Replication::kTotal) {
    std::vector<SiteId> all;
    for (std::size_t i = 0; i < site_count; ++i) {
      all.push_back(static_cast<SiteId>(i));
    }
    for (const Fragment& fragment : fragments) {
      placements.push_back(Placement{fragment.doc_name, all});
    }
    return placements;
  }

  copies = std::clamp<std::size_t>(copies, 1, site_count);
  // Byte-balanced assignment: each fragment's first copy goes to the
  // currently lightest site; further copies to the following sites.
  std::vector<std::size_t> load(site_count, 0);
  for (const Fragment& fragment : fragments) {
    const std::size_t primary = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    Placement placement;
    placement.doc = fragment.doc_name;
    for (std::size_t k = 0; k < copies; ++k) {
      const std::size_t site = (primary + k) % site_count;
      placement.sites.push_back(static_cast<SiteId>(site));
      load[site] += fragment.bytes;
    }
    placements.push_back(std::move(placement));
  }
  return placements;
}

}  // namespace dtx::workload
