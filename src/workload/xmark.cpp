#include "workload/xmark.hpp"

#include <cassert>

#include "xml/builder.hpp"

namespace dtx::workload {

namespace {

using util::Rng;
using xml::Builder;

// Approximate serialized bytes per entity (calibrated against the builders
// below); used to translate target_bytes into entity counts.
constexpr double kPersonBytes = 330.0;
constexpr double kItemBytes = 300.0;
constexpr double kOpenAuctionBytes = 380.0;
constexpr double kClosedAuctionBytes = 260.0;
constexpr double kCategoryBytes = 140.0;

// XMark-ish byte shares per section.
constexpr double kPersonShare = 0.25;
constexpr double kItemShare = 0.30;
constexpr double kOpenShare = 0.25;
constexpr double kClosedShare = 0.15;
constexpr double kCategoryShare = 0.05;

std::string sentence(Rng& rng, std::size_t words) {
  std::string out;
  for (std::size_t i = 0; i < words; ++i) {
    if (i != 0) out += ' ';
    out += rng.next_word(3, 9);
  }
  return out;
}

std::string money(Rng& rng, double lo, double hi) {
  const double value =
      lo + rng.next_double() * (hi - lo);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

void build_person(Builder& b, Rng& rng, const std::string& id) {
  b.child("person").attr("id", id);
  b.leaf("name", rng.next_word(4, 8) + " " + rng.next_word(5, 10));
  b.leaf("emailaddress", rng.next_word(4, 8) + "@" + rng.next_word(4, 8) +
                             ".com");
  // Appends, not one operator+ chain: GCC 12 -Wrestrict false positive
  // (PR105329).
  std::string phone = "+";
  phone += std::to_string(rng.next_between(1, 99));
  phone += ' ';
  phone += std::to_string(rng.next_between(1000000, 9999999));
  b.leaf("phone", phone);
  b.child("address");
  b.leaf("street", std::to_string(rng.next_between(1, 999)) + " " +
                       rng.next_word(4, 10) + " st");
  b.leaf("city", rng.next_word(4, 10));
  b.leaf("country", rng.next_word(4, 10));
  b.leaf("zipcode", std::to_string(rng.next_between(10000, 99999)));
  b.up();
  b.leaf("creditcard", std::to_string(rng.next_between(1000, 9999)) + " " +
                           std::to_string(rng.next_between(1000, 9999)));
  b.child("profile");
  b.leaf("interest", rng.next_word(4, 10));
  b.leaf("education", rng.next_word(6, 12));
  b.leaf("age", std::to_string(rng.next_between(18, 90)));
  b.up();
  b.up();  // person
}

void build_item(Builder& b, Rng& rng, const std::string& id) {
  b.child("item").attr("id", id);
  b.leaf("location", rng.next_word(4, 10));
  b.leaf("quantity", std::to_string(rng.next_between(1, 12)));
  b.leaf("name", rng.next_word(4, 12));
  b.leaf("price", money(rng, 1.0, 500.0));
  b.leaf("payment", "Creditcard");
  b.child("description");
  b.leaf("text", sentence(rng, 12));
  b.up();
  b.leaf("shipping", "Will ship internationally");
  b.up();  // item
}

void build_open_auction(Builder& b, Rng& rng, const std::string& id,
                        const XmarkData& data) {
  b.child("open_auction").attr("id", id);
  b.leaf("initial", money(rng, 1.0, 100.0));
  b.leaf("reserve", money(rng, 50.0, 300.0));
  const int bidders = static_cast<int>(rng.next_between(0, 3));
  for (int i = 0; i < bidders; ++i) {
    b.child("bidder");
    b.leaf("date", std::to_string(rng.next_between(1, 28)) + "/" +
                       std::to_string(rng.next_between(1, 12)) + "/2009");
    if (!data.person_ids.empty()) {
      b.child("personref")
          .attr("person", data.person_ids[rng.next_index(data.person_ids.size())])
          .up();
    }
    b.leaf("increase", money(rng, 1.0, 30.0));
    b.up();
  }
  b.leaf("current", money(rng, 10.0, 400.0));
  if (!data.items_by_continent.empty()) {
    const auto& items = data.items_by_continent.begin()->second;
    if (!items.empty()) {
      b.child("itemref").attr("item", items[rng.next_index(items.size())]).up();
    }
  }
  if (!data.person_ids.empty()) {
    b.child("seller")
        .attr("person", data.person_ids[rng.next_index(data.person_ids.size())])
        .up();
  }
  b.leaf("quantity", "1");
  b.leaf("type", "Regular");
  b.child("interval");
  b.leaf("start", "01/01/2009");
  b.leaf("end", "31/12/2009");
  b.up();
  b.up();  // open_auction
}

void build_closed_auction(Builder& b, Rng& rng, const std::string& id,
                          const XmarkData& data) {
  b.child("closed_auction").attr("id", id);
  if (!data.person_ids.empty()) {
    b.child("seller")
        .attr("person", data.person_ids[rng.next_index(data.person_ids.size())])
        .up();
    b.child("buyer")
        .attr("person", data.person_ids[rng.next_index(data.person_ids.size())])
        .up();
  }
  b.leaf("price", money(rng, 5.0, 500.0));
  b.leaf("date", std::to_string(rng.next_between(1, 28)) + "/" +
                     std::to_string(rng.next_between(1, 12)) + "/2009");
  b.leaf("quantity", "1");
  b.leaf("type", "Regular");
  b.child("annotation");
  b.leaf("description", sentence(rng, 8));
  b.up();
  b.up();  // closed_auction
}

void build_category(Builder& b, Rng& rng, const std::string& id) {
  b.child("category").attr("id", id);
  b.leaf("name", rng.next_word(4, 12));
  b.child("description");
  b.leaf("text", sentence(rng, 6));
  b.up();
  b.up();  // category
}

}  // namespace

XmarkData generate_xmark(const XmarkOptions& options) {
  Rng rng(options.seed);
  XmarkData data;

  const double total = static_cast<double>(options.target_bytes);
  const auto count_of = [&](double share, double per_entity,
                            std::size_t minimum) {
    const auto n = static_cast<std::size_t>(total * share / per_entity);
    return std::max(n, minimum);
  };
  const std::size_t persons = count_of(kPersonShare, kPersonBytes, 4);
  const std::size_t items = count_of(kItemShare, kItemBytes, 6);
  const std::size_t opens = count_of(kOpenShare, kOpenAuctionBytes, 2);
  const std::size_t closeds = count_of(kClosedShare, kClosedAuctionBytes, 2);
  const std::size_t categories = count_of(kCategoryShare, kCategoryBytes, 2);

  // Pre-assign ids (cross-references need them before the XML is built).
  for (std::size_t i = 0; i < persons; ++i) {
    data.person_ids.push_back("person" + std::to_string(i));
  }
  for (std::size_t c = 0; c < kContinentCount; ++c) {
    data.items_by_continent[kContinents[c]] = {};
  }
  for (std::size_t i = 0; i < items; ++i) {
    const char* continent = kContinents[i % kContinentCount];
    data.items_by_continent[continent].push_back("item" + std::to_string(i));
  }
  for (std::size_t i = 0; i < opens; ++i) {
    data.open_auction_ids.push_back("open_auction" + std::to_string(i));
  }
  for (std::size_t i = 0; i < closeds; ++i) {
    data.closed_auction_ids.push_back("closed_auction" + std::to_string(i));
  }
  for (std::size_t i = 0; i < categories; ++i) {
    data.category_ids.push_back("category" + std::to_string(i));
  }

  Builder b("xmark");
  b.root("site");

  b.child("regions");
  for (std::size_t c = 0; c < kContinentCount; ++c) {
    b.child(kContinents[c]);
    for (const std::string& id : data.items_by_continent[kContinents[c]]) {
      build_item(b, rng, id);
    }
    b.up();
  }
  b.up();  // regions

  b.child("categories");
  for (const std::string& id : data.category_ids) {
    build_category(b, rng, id);
  }
  b.up();

  b.child("catgraph");
  for (std::size_t i = 0; i + 1 < data.category_ids.size(); ++i) {
    b.child("edge")
        .attr("from", data.category_ids[i])
        .attr("to", data.category_ids[i + 1])
        .up();
  }
  b.up();

  b.child("people");
  for (const std::string& id : data.person_ids) {
    build_person(b, rng, id);
  }
  b.up();

  b.child("open_auctions");
  for (const std::string& id : data.open_auction_ids) {
    build_open_auction(b, rng, id, data);
  }
  b.up();

  b.child("closed_auctions");
  for (const std::string& id : data.closed_auction_ids) {
    build_closed_auction(b, rng, id, data);
  }
  b.up();

  data.document = b.take();
  return data;
}

}  // namespace dtx::workload
