#include "client/client.hpp"

#include <map>
#include <optional>
#include <thread>

namespace dtx::client {

using util::Code;
using util::Result;
using util::Status;

const char* routing_kind_name(RoutingPolicy::Kind kind) noexcept {
  switch (kind) {
    case RoutingPolicy::Kind::kExplicit: return "explicit";
    case RoutingPolicy::Kind::kRoundRobin: return "round-robin";
    case RoutingPolicy::Kind::kCatalogAffinity: return "catalog-affinity";
  }
  return "?";
}

Result<RoutingPolicy::Kind> parse_routing_kind(std::string_view name) {
  if (name == "explicit") return RoutingPolicy::Kind::kExplicit;
  if (name == "round-robin" || name == "rr") {
    return RoutingPolicy::Kind::kRoundRobin;
  }
  if (name == "affinity" || name == "catalog-affinity") {
    return RoutingPolicy::Kind::kCatalogAffinity;
  }
  return Status(Code::kInvalidArgument,
                "unknown routing '" + std::string(name) +
                    "' (explicit|round-robin|affinity)");
}

// --- TxnHandle ---------------------------------------------------------------

Result<txn::TxnResult> TxnHandle::await_for(
    std::chrono::microseconds timeout) {
  if (!valid()) return Status(Code::kInternal, "empty transaction handle");
  auto result = txn_->await_for(timeout);
  if (!result.has_value()) {
    return Status(Code::kTimeout,
                  "transaction " + std::to_string(txn_->id()) +
                      " still running after " +
                      std::to_string(timeout.count()) + "us");
  }
  return std::move(*result);
}

txn::TxnResult TxnHandle::await() {
  if (!valid()) {
    // Keep the no-Result signature total: an empty handle yields a failed
    // result instead of dereferencing null (await_for reports the same
    // condition as a Status).
    txn::TxnResult result;
    result.state = txn::TxnState::kFailed;
    result.reason = txn::AbortReason::kSiteFailure;
    result.detail = "empty transaction handle";
    return result;
  }
  return txn_->await();
}

// --- Session -----------------------------------------------------------------

namespace {

/// Catalog-affinity scoring: the site hosting the most of the
/// transaction's operation references coordinates (every local reference
/// is one ExecuteOperation round trip saved). Ties break to the lowest
/// site id so routing is deterministic.
SiteId affinity_site(const Cluster& cluster, const PreparedTxn& txn,
                     bool* resolved) {
  std::map<SiteId, std::size_t> scores;
  // One pinned view for the whole scoring pass: hosting sets come back by
  // const reference instead of a fresh vector per operation.
  const core::Catalog::View view = cluster.catalog().view();
  for (const txn::Operation& op : txn.ops()) {
    for (SiteId site : view->sites_of(op.doc)) {
      ++scores[site];
    }
  }
  *resolved = !scores.empty();
  SiteId best = 0;
  std::size_t best_score = 0;
  for (const auto& [site, score] : scores) {  // ordered by site id
    if (score > best_score) {
      best = site;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

SiteId Session::route_impl(const PreparedTxn& txn, bool advance_cursor) const {
  // The round-robin cursor only advances on actual submissions
  // (route_for_submit); the public route() is a pure preview.
  const auto cursor = [&] {
    const std::uint64_t at = advance_cursor
                                 ? client_.round_robin_.fetch_add(1)
                                 : client_.round_robin_.load();
    return static_cast<SiteId>(at % client_.cluster_.site_count());
  };
  if (options_.read_only_affinity &&
      options_.routing.kind != RoutingPolicy::Kind::kCatalogAffinity &&
      txn.read_only()) {
    bool resolved = false;
    const SiteId site = affinity_site(client_.cluster_, txn, &resolved);
    if (resolved) return site;
    // Unknown documents: fall through to the configured policy.
  }
  switch (options_.routing.kind) {
    case RoutingPolicy::Kind::kExplicit:
      return options_.routing.site;
    case RoutingPolicy::Kind::kRoundRobin:
      return cursor();
    case RoutingPolicy::Kind::kCatalogAffinity: {
      bool resolved = false;
      const SiteId site = affinity_site(client_.cluster_, txn, &resolved);
      if (resolved) return site;
      // No referenced document is in the catalog (the submission will
      // abort with kParseError); spread the load anyway.
      return cursor();
    }
  }
  return options_.routing.site;
}

SiteId Session::route(const PreparedTxn& txn) const {
  return route_impl(txn, /*advance_cursor=*/false);
}

SiteId Session::route_for_submit(const PreparedTxn& txn) {
  return route_impl(txn, /*advance_cursor=*/true);
}

Result<TxnHandle> Session::submit(const PreparedTxn& txn) {
  if (txn.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  const SiteId site = route_for_submit(txn);
  auto handle = client_.cluster_.submit(site, txn.clone_ops());
  if (!handle) return handle.status();
  return TxnHandle(std::move(handle).value(), site);
}

Result<std::vector<TxnHandle>> Session::submit_all(
    const std::vector<PreparedTxn>& txns) {
  // Validate the whole batch before submitting anything: a rejected
  // transaction mid-batch would otherwise leave the earlier ones running
  // with their handles dropped.
  for (std::size_t i = 0; i < txns.size(); ++i) {
    if (txns[i].empty()) {
      return Status(Code::kInvalidArgument,
                    "transaction " + std::to_string(i) +
                        " needs at least one operation");
    }
  }
  std::vector<TxnHandle> handles;
  handles.reserve(txns.size());
  for (const PreparedTxn& txn : txns) {
    auto handle = submit(txn);
    if (!handle) return handle.status();  // cluster-wide failure (stopped)
    handles.push_back(std::move(handle).value());
  }
  return handles;
}

Result<txn::TxnResult> Session::execute(const PreparedTxn& txn) {
  retries_ = 0;
  std::uint32_t deadlock_retries = 0;
  std::uint32_t other_retries = 0;
  std::optional<txn::TxnResult> last_abort;
  for (;;) {
    auto handle = submit(txn);
    if (!handle) {
      // A failed *re*-submission (e.g. the cluster stopped between
      // attempts) must not eat the transaction's real outcome.
      if (last_abort.has_value()) return std::move(*last_abort);
      return handle.status();
    }

    txn::TxnResult result;
    if (options_.await_timeout.count() > 0) {
      auto awaited = handle.value().await_for(options_.await_timeout);
      if (!awaited) return awaited.status();
      result = std::move(awaited).value();
    } else {
      result = handle.value().await();
    }

    if (result.state != txn::TxnState::kAborted ||
        !txn::abort_reason_retryable(result.reason)) {
      return result;
    }
    const bool budget_left =
        result.reason == txn::AbortReason::kDeadlockVictim
            ? deadlock_retries < options_.retry.max_deadlock_retries
            : other_retries < options_.retry.max_retries;
    if (!budget_left) return result;
    if (result.reason == txn::AbortReason::kDeadlockVictim) {
      ++deadlock_retries;
    } else {
      ++other_retries;
    }
    last_abort = std::move(result);
    ++retries_;
    if (options_.retry.backoff.count() > 0) {
      std::this_thread::sleep_for(options_.retry.backoff * retries_);
    }
  }
}

}  // namespace dtx::client
