// Typed transaction construction for the DTX client layer.
//
// TxnBuilder parses and validates every operation exactly once, at the
// point the program states it; build() freezes the list into an immutable
// PreparedTxn that a Session can submit any number of times (deadlock-abort
// retries re-send the same parsed operations — no text round trip, the
// herodb typed-handle idiom). The textual operation form remains available
// through op_text() / PreparedTxn::parse as a thin adapter for dtxsh and
// workload files.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "txn/operation.hpp"
#include "util/status.hpp"
#include "xupdate/update_op.hpp"

namespace dtx::client {

/// An immutable, pre-validated list of operations. Cheap to copy (shared
/// storage) and safe to submit concurrently from several sessions.
class PreparedTxn {
 public:
  PreparedTxn() = default;

  [[nodiscard]] const std::vector<txn::Operation>& ops() const noexcept {
    static const std::vector<txn::Operation> kEmpty;
    return ops_ != nullptr ? *ops_ : kEmpty;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops().size(); }
  [[nodiscard]] bool empty() const noexcept { return ops().empty(); }
  [[nodiscard]] bool read_only() const noexcept;

  /// A fresh copy of the operations for one submission (the coordinator
  /// takes ownership of its operation list).
  [[nodiscard]] std::vector<txn::Operation> clone_ops() const {
    return ops();
  }

  /// Serializes back to the textual form (round-trippable).
  [[nodiscard]] std::vector<std::string> to_text() const;

  /// Textual adapter: parses each "query <doc> <xpath>" / "update <doc>
  /// <op>" line. The typed builder below is preferred in application code.
  static util::Result<PreparedTxn> parse(
      const std::vector<std::string>& op_texts);

 private:
  friend class TxnBuilder;
  explicit PreparedTxn(std::vector<txn::Operation> ops)
      : ops_(std::make_shared<const std::vector<txn::Operation>>(
            std::move(ops))) {}

  std::shared_ptr<const std::vector<txn::Operation>> ops_;
};

/// Fluent builder:
///
///   auto txn = TxnBuilder()
///                  .query("d1", "/site/people/person[@id='p1']/name")
///                  .change("d2", "/site/regions/europe/item[@id='i1']/price",
///                          "12.50")
///                  .build();
///
/// Every call validates immediately; the first failure is latched (with the
/// 0-based operation index) and reported by build(). Calls after a failure
/// are no-ops, so a chain never dereferences a half-built operation.
class TxnBuilder {
 public:
  TxnBuilder& query(std::string doc, std::string_view xpath);
  TxnBuilder& insert(std::string doc, std::string_view target,
                     std::string_view fragment_xml,
                     xupdate::InsertWhere where = xupdate::InsertWhere::kInto);
  TxnBuilder& remove(std::string doc, std::string_view target);
  TxnBuilder& rename(std::string doc, std::string_view target,
                     std::string new_name);
  TxnBuilder& change(std::string doc, std::string_view target,
                     std::string new_value);
  TxnBuilder& transpose(std::string doc, std::string_view target,
                        std::string_view destination);

  /// Appends an already-constructed operation (assumed valid).
  TxnBuilder& op(txn::Operation operation);
  /// Textual adapter: parses one operation line.
  TxnBuilder& op_text(std::string_view text);

  [[nodiscard]] bool ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] const util::Status& status() const noexcept { return status_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  /// Freezes the transaction. Fails on any recorded operation error or an
  /// empty transaction; the builder resets either way and can be reused.
  util::Result<PreparedTxn> build();

 private:
  void add(util::Result<txn::Operation> operation);

  std::vector<txn::Operation> ops_;
  util::Status status_;
};

}  // namespace dtx::client
