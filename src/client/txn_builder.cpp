#include "client/txn_builder.hpp"

namespace dtx::client {

using util::Code;
using util::Result;
using util::Status;

bool PreparedTxn::read_only() const noexcept {
  for (const txn::Operation& operation : ops()) {
    if (operation.is_update()) return false;
  }
  return true;
}

std::vector<std::string> PreparedTxn::to_text() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (const txn::Operation& operation : ops()) {
    out.push_back(operation.to_string());
  }
  return out;
}

Result<PreparedTxn> PreparedTxn::parse(
    const std::vector<std::string>& op_texts) {
  TxnBuilder builder;
  for (const std::string& text : op_texts) builder.op_text(text);
  return builder.build();
}

void TxnBuilder::add(Result<txn::Operation> operation) {
  if (!status_.is_ok()) return;  // first error wins; later calls are no-ops
  if (!operation) {
    status_ = Status(operation.status().code(),
                     "operation " + std::to_string(ops_.size()) + ": " +
                         operation.status().message());
    return;
  }
  ops_.push_back(std::move(operation).value());
}

TxnBuilder& TxnBuilder::query(std::string doc, std::string_view xpath) {
  add(txn::make_query(std::move(doc), xpath));
  return *this;
}

TxnBuilder& TxnBuilder::insert(std::string doc, std::string_view target,
                               std::string_view fragment_xml,
                               xupdate::InsertWhere where) {
  auto update = xupdate::make_insert(target, fragment_xml, where);
  if (!update) {
    add(update.status());
    return *this;
  }
  add(txn::make_update(std::move(doc), std::move(update).value()));
  return *this;
}

TxnBuilder& TxnBuilder::remove(std::string doc, std::string_view target) {
  auto update = xupdate::make_remove(target);
  if (!update) {
    add(update.status());
    return *this;
  }
  add(txn::make_update(std::move(doc), std::move(update).value()));
  return *this;
}

TxnBuilder& TxnBuilder::rename(std::string doc, std::string_view target,
                               std::string new_name) {
  auto update = xupdate::make_rename(target, std::move(new_name));
  if (!update) {
    add(update.status());
    return *this;
  }
  add(txn::make_update(std::move(doc), std::move(update).value()));
  return *this;
}

TxnBuilder& TxnBuilder::change(std::string doc, std::string_view target,
                               std::string new_value) {
  auto update = xupdate::make_change(target, std::move(new_value));
  if (!update) {
    add(update.status());
    return *this;
  }
  add(txn::make_update(std::move(doc), std::move(update).value()));
  return *this;
}

TxnBuilder& TxnBuilder::transpose(std::string doc, std::string_view target,
                                  std::string_view destination) {
  auto update = xupdate::make_transpose(target, destination);
  if (!update) {
    add(update.status());
    return *this;
  }
  add(txn::make_update(std::move(doc), std::move(update).value()));
  return *this;
}

TxnBuilder& TxnBuilder::op(txn::Operation operation) {
  if (status_.is_ok()) ops_.push_back(std::move(operation));
  return *this;
}

TxnBuilder& TxnBuilder::op_text(std::string_view text) {
  add(txn::parse_operation(text));
  return *this;
}

Result<PreparedTxn> TxnBuilder::build() {
  Status status = std::move(status_);
  std::vector<txn::Operation> ops = std::move(ops_);
  status_ = Status::ok();
  ops_.clear();
  if (!status.is_ok()) return status;
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  return PreparedTxn(std::move(ops));
}

}  // namespace dtx::client
