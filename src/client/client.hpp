// The DTX client layer: the canonical way programs talk to a cluster.
//
// The paper's client model is "the client makes a connection with an
// instance of DTX and sends the transaction", with re-submission after a
// deadlock abort left to the application. This layer packages both ends of
// that contract as typed objects:
//
//   * Client  — process-wide handle on a Cluster; holds the default
//               SessionOptions and the shared round-robin cursor. Safe to
//               share across threads.
//   * Session — one application conversation: a routing policy (which site
//               coordinates each transaction), a retry policy (which abort
//               reasons are resubmitted, how often, with what backoff) and
//               an optional await deadline. One session per client thread.
//   * TxnHandle — future-like handle for an in-flight transaction:
//               await_for(deadline) bounds the wait (fixing the unbounded
//               Transaction::await()), pipelined submission returns one
//               handle per transaction.
//
// Transactions are built once with TxnBuilder (txn_builder.hpp) and the
// resulting PreparedTxn is reused across retry attempts — operations are
// never re-parsed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "client/txn_builder.hpp"
#include "dtx/cluster.hpp"

namespace dtx::client {

using core::Cluster;
using net::SiteId;

/// How a session picks the coordinator site of each submission.
struct RoutingPolicy {
  enum class Kind : std::uint8_t {
    kExplicit,         ///< always the configured site (the paper's model)
    kRoundRobin,       ///< rotate over all sites (cursor shared per Client)
    kCatalogAffinity,  ///< site hosting the most operations' documents —
                       ///< minimizes remote ExecuteOperation fan-out
  };
  Kind kind = Kind::kExplicit;
  SiteId site = 0;  ///< kExplicit only

  static RoutingPolicy explicit_site(SiteId site) noexcept {
    return {Kind::kExplicit, site};
  }
  static RoutingPolicy round_robin() noexcept {
    return {Kind::kRoundRobin, 0};
  }
  static RoutingPolicy catalog_affinity() noexcept {
    return {Kind::kCatalogAffinity, 0};
  }
};

const char* routing_kind_name(RoutingPolicy::Kind kind) noexcept;

/// Parses a routing-kind name ("explicit", "round-robin"/"rr",
/// "affinity"/"catalog-affinity") — the shared `--routing=` flag syntax.
util::Result<RoutingPolicy::Kind> parse_routing_kind(std::string_view name);

/// Automatic re-submission after an abort. Deadlock-victim aborts and the
/// other *transient* abort reasons (lock-wait exhausted, site failure) have
/// independent budgets: `max_deadlock_retries` only governs deadlock
/// victims, `max_retries` only the other retryable reasons — the two never
/// gate each other. Deterministic aborts (parse/validation, unprocessable
/// update) are never retried regardless of either budget.
struct RetryPolicy {
  /// Max automatic re-submissions after a deadlock abort (0 = never).
  std::uint32_t max_deadlock_retries = 0;
  /// Max automatic re-submissions after non-deadlock *retryable* aborts
  /// (0 = never). Independent of max_deadlock_retries.
  std::uint32_t max_retries = 0;
  /// Linear backoff between attempts (attempt N sleeps N * backoff).
  /// Essential under the paper's newest-transaction victim rule: an
  /// immediately resubmitted victim re-enters as the newest transaction
  /// and loses every subsequent cycle against a steady stream of older
  /// competitors (victim starvation); backing off lets it land in a gap.
  std::chrono::microseconds backoff{2'000};
};

struct SessionOptions {
  RoutingPolicy routing;
  RetryPolicy retry;
  /// Upper bound on each blocking execute() attempt (0 = wait forever).
  /// On expiry execute() returns util::Code::kTimeout; the transaction
  /// keeps running in the cluster.
  std::chrono::microseconds await_timeout{0};
  /// Route *read-only* transactions by catalog affinity regardless of the
  /// routing policy. A read-only transaction coordinated at a site hosting
  /// its documents is served from that site's MVCC snapshots in a single
  /// local round — no ExecuteOperation / SnapshotReadRequest fan-out at
  /// all. Update transactions keep the configured policy.
  bool read_only_affinity = false;
};

/// Future-like handle on one submitted transaction.
class TxnHandle {
 public:
  TxnHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return txn_ != nullptr; }
  [[nodiscard]] lock::TxnId id() const noexcept {
    return valid() ? txn_->id() : 0;
  }
  /// The site the transaction was routed to (its coordinator).
  [[nodiscard]] SiteId coordinator() const noexcept { return site_; }
  [[nodiscard]] bool done() const { return valid() && txn_->completed(); }

  /// Bounded wait: the result, or kTimeout when the deadline elapses first
  /// (the transaction keeps running; call again or abandon the handle).
  util::Result<txn::TxnResult> await_for(std::chrono::microseconds timeout);
  /// Unbounded wait. Prefer await_for in anything user-facing.
  txn::TxnResult await();

 private:
  friend class Session;
  TxnHandle(std::shared_ptr<txn::Transaction> txn, SiteId site)
      : txn_(std::move(txn)), site_(site) {}

  std::shared_ptr<txn::Transaction> txn_;
  SiteId site_ = 0;
};

class Client;

/// One application conversation with the cluster. Not thread-safe — open
/// one session per client thread (sessions are cheap; the Client is the
/// shared object).
class Session {
 public:
  /// Blocking execution with automatic retries per the retry policy. The
  /// returned result is the final attempt's outcome; retries() reports the
  /// re-submissions the last execute() consumed.
  util::Result<txn::TxnResult> execute(const PreparedTxn& txn);

  /// Async submission (no retry handling). The handle's await_for bounds
  /// the wait.
  util::Result<TxnHandle> submit(const PreparedTxn& txn);

  /// Pipelined submission: every transaction is in flight before the first
  /// result is awaited. One handle per transaction, in input order.
  util::Result<std::vector<TxnHandle>> submit_all(
      const std::vector<PreparedTxn>& txns);

  /// The site the routing policy picks for `txn` right now (round-robin
  /// advances its cursor on submission, not here).
  [[nodiscard]] SiteId route(const PreparedTxn& txn) const;

  [[nodiscard]] std::uint32_t retries() const noexcept { return retries_; }
  [[nodiscard]] const SessionOptions& options() const noexcept {
    return options_;
  }

 private:
  friend class Client;
  Session(Client& client, SessionOptions options)
      : client_(client), options_(options) {}

  [[nodiscard]] SiteId route_impl(const PreparedTxn& txn,
                                  bool advance_cursor) const;
  [[nodiscard]] SiteId route_for_submit(const PreparedTxn& txn);

  Client& client_;
  SessionOptions options_;
  std::uint32_t retries_ = 0;
};

/// Process-wide client over one Cluster. Thread-safe; hand each thread its
/// own Session.
class Client {
 public:
  explicit Client(Cluster& cluster, SessionOptions defaults = {})
      : cluster_(cluster), defaults_(defaults) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] Session session() { return Session(*this, defaults_); }
  [[nodiscard]] Session session(SessionOptions options) {
    return Session(*this, options);
  }

  [[nodiscard]] Cluster& cluster() noexcept { return cluster_; }

 private:
  friend class Session;

  Cluster& cluster_;
  SessionOptions defaults_;
  /// Round-robin cursor shared by every session of this client, so
  /// concurrent sessions spread over sites instead of marching in step.
  std::atomic<std::uint64_t> round_robin_{0};
};

}  // namespace dtx::client
