#include "client/remote_session.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <utility>

namespace dtx::client {

using util::Code;
using util::Result;
using util::Status;

namespace {

/// A fresh endpoint id in the client range. Collisions between concurrent
/// sessions against the same daemon are the only hazard; 31 bits of
/// entropy makes them negligible for test- and shell-scale client counts.
net::SiteId random_client_id() {
  std::random_device rd;
  std::uint32_t id = (rd() ^ (static_cast<std::uint32_t>(::getpid()) << 16));
  return net::kClientIdBase | (id & 0x7fff'ffffu);
}

/// Blocking connect to "host:port" (numeric or resolvable host).
Result<int> dial(const std::string& address,
                 std::chrono::milliseconds timeout) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 == address.size()) {
    return Status(Code::kInvalidArgument,
                  "address must be host:port, got '" + address + "'");
  }
  const std::string host = address.substr(0, colon);
  const std::string port = address.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  if (int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &list);
      rc != 0) {
    return Status(Code::kInvalidArgument,
                  "cannot resolve '" + address + "': " + gai_strerror(rc));
  }

  int fd = -1;
  std::string error = "no addresses";
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      error = std::strerror(errno);
      continue;
    }
    timeval tv{};
    tv.tv_sec = timeout.count() / 1000;
    tv.tv_usec = static_cast<long>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) {
    return Status(Code::kUnavailable,
                  "cannot connect to " + address + ": " + error);
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

RemoteResult from_reply(net::ClientReply&& reply) {
  RemoteResult out;
  out.accepted = reply.accepted;
  out.txn = reply.txn;
  out.state = static_cast<txn::TxnState>(reply.state);
  out.reason = static_cast<txn::AbortReason>(reply.reason);
  out.deadlock_victim = reply.deadlock_victim;
  out.wait_episodes = reply.wait_episodes;
  out.response_ms = reply.response_ms;
  out.detail = std::move(reply.detail);
  out.rows = std::move(reply.rows);
  return out;
}

}  // namespace

RemoteSession::~RemoteSession() { close(); }

void RemoteSession::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = net::codec::FrameReader();
  ready_.clear();
}

Status RemoteSession::connect(const std::string& address,
                              std::chrono::milliseconds timeout) {
  if (fd_ >= 0) return Status(Code::kInternal, "session already connected");
  auto fd = dial(address, timeout);
  if (!fd) return fd.status();
  fd_ = fd.value();
  id_ = random_client_id();

  // Hello both ways: ours announces the client id replies route back to;
  // the server's tells us which site we are talking to (and that the
  // protocol versions agree — the daemon drops mismatched connections).
  net::Message hello;
  hello.from = id_;
  hello.to = 0;
  hello.payload = net::Hello{id_, net::codec::kProtocolVersion};
  if (Status sent = send_frame(hello); !sent) {
    close();
    return sent;
  }

  bool greeted = false;
  Status pumped = pump(
      std::chrono::steady_clock::now() + timeout, [&](net::Message& message) {
        const auto* server_hello = std::get_if<net::Hello>(&message.payload);
        if (server_hello == nullptr) return false;  // not ours; drop
        if (server_hello->protocol != net::codec::kProtocolVersion) {
          return false;
        }
        server_ = server_hello->id;
        greeted = true;
        return true;
      });
  if (!pumped) {
    close();
    return pumped;
  }
  if (!greeted) {
    close();
    return Status(Code::kUnavailable, "server sent no Hello");
  }
  return Status::ok();
}

Status RemoteSession::send_frame(const net::Message& message) {
  if (fd_ < 0) return Status(Code::kUnavailable, "session not connected");
  const std::string frame = net::codec::encode(message);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status(Code::kUnavailable,
                  std::string("send failed: ") + std::strerror(errno));
  }
  return Status::ok();
}

Status RemoteSession::pump(
    std::chrono::steady_clock::time_point deadline,
    const std::function<bool(net::Message&)>& done) {
  while (true) {
    // Drain already-buffered frames first.
    while (true) {
      auto next = reader_.next();
      if (!next) {
        return Status(Code::kInternal,
                      "corrupt frame from server: " + next.status().message());
      }
      if (!next.value().has_value()) break;
      net::Message message = std::move(*next.value());
      if (done(message)) return Status::ok();
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Status(Code::kTimeout, "reply timed out");
    const auto wait_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();

    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>(std::min<long long>(wait_ms, 60'000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status(Code::kUnavailable,
                    std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // re-check deadline

    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return Status(Code::kUnavailable, n == 0 ? "server closed the connection"
                                             : std::string("recv failed: ") +
                                                   std::strerror(errno));
  }
}

Result<std::uint64_t> RemoteSession::submit(std::vector<txn::Operation> ops) {
  if (fd_ < 0) return Status(Code::kUnavailable, "session not connected");
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  const std::uint64_t seq = next_seq_++;
  net::Message message;
  message.from = id_;
  message.to = server_;
  message.payload = net::ClientSubmit{seq, std::move(ops)};
  if (Status sent = send_frame(message); !sent) return sent;
  return seq;
}

Result<RemoteResult> RemoteSession::await(std::uint64_t seq,
                                          std::chrono::milliseconds timeout) {
  if (auto parked = ready_.find(seq); parked != ready_.end()) {
    RemoteResult out = std::move(parked->second);
    ready_.erase(parked);
    return out;
  }
  std::optional<RemoteResult> result;
  Status pumped = pump(
      std::chrono::steady_clock::now() + timeout, [&](net::Message& message) {
        auto* reply = std::get_if<net::ClientReply>(&message.payload);
        if (reply == nullptr) return false;  // stray frame; ignore
        if (reply->seq == seq) {
          result = from_reply(std::move(*reply));
          return true;
        }
        ready_.emplace(reply->seq, from_reply(std::move(*reply)));
        return false;
      });
  if (!pumped) return pumped;
  return std::move(*result);
}

Result<RemoteResult> RemoteSession::execute(std::vector<txn::Operation> ops,
                                            std::chrono::milliseconds timeout) {
  auto seq = submit(std::move(ops));
  if (!seq) return seq.status();
  return await(seq.value(), timeout);
}

Result<RemoteResult> RemoteSession::execute_text(
    const std::vector<std::string>& op_texts,
    std::chrono::milliseconds timeout) {
  std::vector<txn::Operation> ops;
  ops.reserve(op_texts.size());
  for (const std::string& text : op_texts) {
    auto op = txn::parse_operation(text);
    if (!op) return op.status();
    ops.push_back(std::move(op).value());
  }
  return execute(std::move(ops), timeout);
}

}  // namespace dtx::client
