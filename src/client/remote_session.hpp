// RemoteSession: the client side of the real transport — a blocking TCP
// connection to one dtxd site daemon, speaking the binary codec. The
// network analogue of Cluster::submit/execute: operations are parsed once
// on the client, travel typed (canonical text on the wire, re-parsed and
// plan-cached at the site), and results come back as flattened TxnResults.
//
// The session identifies itself with a random endpoint id in the client
// range (>= net::kClientIdBase — see net/network.hpp), learned by the
// server from the Hello handshake; replies route back over this
// connection. Submissions are correlated by `seq`, so submit()/await()
// pipelines: several transactions can be in flight before the first result
// is read. Not thread-safe — one session per thread, like client::Session.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "net/network.hpp"
#include "txn/abort_reason.hpp"
#include "txn/operation.hpp"
#include "txn/transaction.hpp"
#include "util/status.hpp"

namespace dtx::client {

/// A ClientReply with the enum bytes widened back to their types.
struct RemoteResult {
  bool accepted = false;  ///< false: rejected at submission (see detail)
  lock::TxnId txn = 0;
  txn::TxnState state = txn::TxnState::kAborted;
  txn::AbortReason reason = txn::AbortReason::kNone;
  bool deadlock_victim = false;
  std::uint32_t wait_episodes = 0;
  double response_ms = 0.0;
  std::string detail;
  std::vector<std::vector<std::string>> rows;
};

class RemoteSession {
 public:
  RemoteSession() = default;
  ~RemoteSession();

  RemoteSession(const RemoteSession&) = delete;
  RemoteSession& operator=(const RemoteSession&) = delete;

  /// Connects to a dtxd at "host:port" and completes the Hello handshake
  /// (both directions) within `timeout`.
  util::Status connect(const std::string& address,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(5000));
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// The server's site id, from its Hello.
  [[nodiscard]] net::SiteId site() const noexcept { return server_; }
  /// This session's client-range endpoint id.
  [[nodiscard]] net::SiteId client_id() const noexcept { return id_; }

  /// Sends one transaction; returns its correlation seq immediately
  /// (pipelining: submit several, then await each).
  util::Result<std::uint64_t> submit(std::vector<txn::Operation> ops);

  /// Blocks until the reply for `seq` arrives or `timeout` elapses
  /// (kTimeout; the transaction keeps running at the site — await again
  /// or abandon). Replies arriving out of order are buffered.
  util::Result<RemoteResult> await(std::uint64_t seq,
                                   std::chrono::milliseconds timeout);

  /// submit + await in one call.
  util::Result<RemoteResult> execute(std::vector<txn::Operation> ops,
                                     std::chrono::milliseconds timeout =
                                         std::chrono::milliseconds(30'000));

  /// Textual adapter ("query d1 /a/b"): parse, then execute.
  util::Result<RemoteResult> execute_text(
      const std::vector<std::string>& op_texts,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(30'000));

 private:
  util::Status send_frame(const net::Message& message);
  /// Reads frames until one passes `done`; respects the absolute deadline.
  util::Status pump(std::chrono::steady_clock::time_point deadline,
                    const std::function<bool(net::Message&)>& done);

  int fd_ = -1;
  net::SiteId id_ = 0;
  net::SiteId server_ = 0;
  std::uint64_t next_seq_ = 1;
  net::codec::FrameReader reader_;
  std::map<std::uint64_t, RemoteResult> ready_;  ///< out-of-order replies
};

}  // namespace dtx::client
