// Clang Thread Safety Analysis macros (no-ops under other compilers).
//
// These wrap the attribute spellings documented in
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the engine's
// locking discipline is machine-checked: fields name their mutex with
// DTX_GUARDED_BY, internal helpers that expect a lock held say so with
// DTX_REQUIRES, and `clang++ -Wthread-safety -Werror` (the CI
// static-analysis job) proves every access site. GCC builds compile the
// annotations away entirely.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define DTX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DTX_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a capability (lockable) type.
#define DTX_CAPABILITY(x) DTX_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define DTX_SCOPED_CAPABILITY DTX_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named mutex(es).
#define DTX_GUARDED_BY(x) DTX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named mutex.
#define DTX_PT_GUARDED_BY(x) DTX_THREAD_ANNOTATION(pt_guarded_by(x))

/// This mutex must be acquired before the listed ones.
#define DTX_ACQUIRED_BEFORE(...) \
  DTX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// This mutex must be acquired after the listed ones.
#define DTX_ACQUIRED_AFTER(...) \
  DTX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively on entry (and does not
/// release it).
#define DTX_REQUIRES(...) \
  DTX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared on entry.
#define DTX_REQUIRES_SHARED(...) \
  DTX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it on return.
#define DTX_ACQUIRE(...) \
  DTX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and holds it on return.
#define DTX_ACQUIRE_SHARED(...) \
  DTX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusively held) capability.
#define DTX_RELEASE(...) \
  DTX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases the shared-held capability.
#define DTX_RELEASE_SHARED(...) \
  DTX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function releases the capability whichever way it is held.
#define DTX_RELEASE_GENERIC(...) \
  DTX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define DTX_TRY_ACQUIRE(...) \
  DTX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define DTX_TRY_ACQUIRE_SHARED(...) \
  DTX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy / deadlock guard).
#define DTX_EXCLUDES(...) DTX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held; teaches the
/// analysis the fact on paths it cannot prove (e.g. across a CondVar wait
/// implemented on the native handle).
#define DTX_ASSERT_CAPABILITY(x) \
  DTX_THREAD_ANNOTATION(assert_capability(x))
#define DTX_ASSERT_SHARED_CAPABILITY(x) \
  DTX_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define DTX_RETURN_CAPABILITY(x) DTX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the intraprocedural analysis cannot follow
/// (conditional acquisition, lock-set handoff through containers). Every
/// use carries a comment saying why the analysis cannot see through it.
#define DTX_NO_THREAD_SAFETY_ANALYSIS \
  DTX_THREAD_ANNOTATION(no_thread_safety_analysis)
