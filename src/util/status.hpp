// Lightweight status / result types used across DTX instead of exceptions on
// hot paths (lock grants, message handling). Exceptions remain for
// programmer errors and unrecoverable parse failures.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dtx::util {

/// Error category for a failed operation.
enum class Code {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad XPath, bad update op, ...)
  kNotFound,          ///< document / node / site does not exist
  kAlreadyExists,     ///< duplicate document name, duplicate site id, ...
  kConflict,          ///< lock conflict: the request must wait
  kDeadlock,          ///< granting would close a wait-for cycle
  kAborted,           ///< transaction was aborted (victim or explicit)
  kFailed,            ///< transaction failed (abort could not be delivered)
  kUnavailable,       ///< site down / message dropped
  kTimeout,           ///< deadline elapsed before the result was available
  kInternal,          ///< invariant violation
};

/// Human-readable name of a status code ("ok", "conflict", ...).
const char* code_name(Code code) noexcept;

/// A status: either OK or a code plus a context message.
class Status {
 public:
  Status() noexcept : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != Code::kOk && "use Status::ok() for success");
  }

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Code::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Code code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "conflict: ST held by t12 on guide node 56" style rendering.
  [[nodiscard]] std::string to_string() const;

 private:
  Code code_;
  std::string message_;
};

/// A value-or-status result. Intentionally minimal: only what DTX needs.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "a Result built from Status must be an error");
  }

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dtx::util
