#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace dtx::util {

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string xml_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    const std::size_t semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      out += text[i++];
      continue;
    }
    const std::string_view entity = text.substr(i, semi - i + 1);
    if (entity == "&amp;") out += '&';
    else if (entity == "&lt;") out += '<';
    else if (entity == "&gt;") out += '>';
    else if (entity == "&quot;") out += '"';
    else if (entity == "&apos;") out += '\'';
    else {
      out += entity;  // unknown entity: pass through
    }
    i = semi + 1;
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace dtx::util
