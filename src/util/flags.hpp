// Tiny --key=value command-line flag parser for the bench/example binaries.
// Every experiment knob in bench/ is overridable without rebuilding.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dtx::util {

class Flags {
 public:
  /// Parses argv entries of the form --name=value (or --name for "true").
  /// Non-flag arguments are ignored. Later duplicates win.
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dtx::util
