// Annotated synchronization primitives: dtx::sync::Mutex / SharedMutex /
// CondVar wrap the std primitives with
//   1. Clang Thread Safety Analysis capability annotations, so guarded
//      fields and REQUIRES-taking helpers are compile-time checked
//      (util/thread_annotations.hpp; enforced by the CI clang build), and
//   2. an optional runtime lock-rank checker (DTX_LOCK_RANK=1): every
//      mutex is constructed with a rank from the single lattice below and
//      a thread-local held-set flags any out-of-order acquisition
//      deterministically on first occurrence — unlike TSAN, which needs
//      to witness the two orders racing. Release builds compile the
//      checker out entirely; the wrappers are then zero-cost shims.
//
// The lattice (outer first — a thread may only acquire ranks strictly
// greater than everything it already holds; equal ranks only for mutexes
// constructed multi-acquire, which impose their own internal order):
//
//   rank | mutex                                  | multi
//   -----+----------------------------------------+------
//    10  | Cluster membership                     |
//    20  | SiteContext coord_mutex                |
//    30  | SiteContext resp_mutex                 |
//    40  | SiteContext ack_mutex                  |
//    50  | LockManager data latch (SharedMutex)   |
//    60  | SiteContext part_mutex                 |
//    70  | SiteContext stats_mutex                |
//    80  | LockTable shard                        | yes (ascending index)
//    90  | LockManager wait-for graph             |
//   100  | LockManager wait records               |
//   110  | DataManager checkpoint                 |
//   120  | PlanCache shard                        |
//   130  | SnapshotStore (store-wide)             |
//   140  | SnapshotStore per-document             |
//   150  | Transaction completion latch           |
//   160  | Catalog                                |
//   170  | Network (SimNetwork / TcpNetwork)      |
//   180  | Mailbox                                |
//   190  | Storage backend                        |
//   200  | util::log sink (absolute leaf)         |
//
// Keep this table in sync with the README "Correctness tooling" section.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

#if !defined(DTX_LOCK_RANK)
#define DTX_LOCK_RANK 0
#endif

namespace dtx::sync {

/// Global acquisition order. A thread holding rank R may only acquire
/// ranks > R (or == R on a multi-acquire mutex). Values are spaced so a
/// future layer can slot in without renumbering.
enum class LockRank : int {
  kClusterMembership = 10,
  kSiteCoordinator = 20,
  kSiteResponses = 30,
  kSiteAcks = 40,
  kDataLatch = 50,
  kSiteParticipant = 60,
  kSiteStats = 70,
  kLockTableShard = 80,
  kWaitForGraph = 90,
  kLockRecords = 100,
  kCheckpoint = 110,
  kPlanCacheShard = 120,
  kSnapshotStore = 130,
  kSnapshotDoc = 140,
  kTxnLatch = 150,
  kCatalog = 160,
  kNetwork = 170,
  kMailbox = 180,
  kStorage = 190,
  kLog = 200,
};

[[nodiscard]] const char* lock_rank_name(LockRank rank) noexcept;

/// Tag for mutexes that may be acquired several times at the same rank by
/// one thread (e.g. lock-table shards, taken in ascending shard index).
struct MultiAcquireT {
  explicit MultiAcquireT() = default;
};
inline constexpr MultiAcquireT kMultiAcquire{};

#if DTX_LOCK_RANK
namespace rank_check {
/// Validates the lattice order and records the hold; aborts with a
/// diagnostic on the first out-of-order or recursive acquisition.
void note_acquire(const void* mutex, LockRank rank, bool multi);
/// Removes the hold (holds form a set, not a stack: lock_shards releases
/// its guards in vector-destruction order).
void note_release(const void* mutex) noexcept;
/// True when the calling thread recorded an acquire of `mutex`.
[[nodiscard]] bool is_held(const void* mutex) noexcept;
/// Aborts unless the calling thread holds `mutex`.
void assert_held(const void* mutex, LockRank rank);
}  // namespace rank_check
#endif

/// std::mutex with TSA capability annotations and (under DTX_LOCK_RANK)
/// rank-order enforcement.
class DTX_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) noexcept { set_rank(rank, false); }
  Mutex(LockRank rank, MultiAcquireT) noexcept { set_rank(rank, true); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DTX_ACQUIRE() {
    // Validate before blocking: a recursive or out-of-order acquisition
    // must abort with its diagnostic, not sit in a silent deadlock.
    note_acquire();
    raw_.lock();
  }

  bool try_lock() DTX_TRY_ACQUIRE(true) {
    // A failed try_lock cannot deadlock, but a succeeding one still joins
    // the thread's held set and must respect the lattice.
    if (!raw_.try_lock()) return false;
    note_acquire();
    return true;
  }

  void unlock() DTX_RELEASE() {
    note_release();
    raw_.unlock();
  }

  /// Aborts (under DTX_LOCK_RANK) unless the calling thread holds this
  /// mutex; always tells the static analysis the lock is held.
  void AssertHeld() const DTX_ASSERT_CAPABILITY(this) {
#if DTX_LOCK_RANK
    rank_check::assert_held(this, rank_);
#endif
  }

 private:
  friend class CondVar;

  void set_rank([[maybe_unused]] LockRank rank,
                [[maybe_unused]] bool multi) noexcept {
#if DTX_LOCK_RANK
    rank_ = rank;
    multi_ = multi;
#endif
  }
  void note_acquire() {
#if DTX_LOCK_RANK
    rank_check::note_acquire(this, rank_, multi_);
#endif
  }
  void note_release() noexcept {
#if DTX_LOCK_RANK
    rank_check::note_release(this);
#endif
  }

  std::mutex raw_;
#if DTX_LOCK_RANK
  LockRank rank_;
  bool multi_ = false;
#endif
};

/// std::shared_mutex with TSA annotations and rank enforcement. Shared and
/// exclusive holds occupy the same lattice slot.
class DTX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) noexcept { set_rank(rank, false); }
  SharedMutex(LockRank rank, MultiAcquireT) noexcept { set_rank(rank, true); }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DTX_ACQUIRE() {
    note_acquire();  // validate before blocking (see Mutex::lock)
    raw_.lock();
  }
  bool try_lock() DTX_TRY_ACQUIRE(true) {
    if (!raw_.try_lock()) return false;
    note_acquire();
    return true;
  }
  void unlock() DTX_RELEASE() {
    note_release();
    raw_.unlock();
  }

  void lock_shared() DTX_ACQUIRE_SHARED() {
    note_acquire();  // validate before blocking (see Mutex::lock)
    raw_.lock_shared();
  }
  bool try_lock_shared() DTX_TRY_ACQUIRE_SHARED(true) {
    if (!raw_.try_lock_shared()) return false;
    note_acquire();
    return true;
  }
  void unlock_shared() DTX_RELEASE_SHARED() {
    note_release();
    raw_.unlock_shared();
  }

  void AssertHeld() const DTX_ASSERT_CAPABILITY(this) {
#if DTX_LOCK_RANK
    rank_check::assert_held(this, rank_);
#endif
  }
  void AssertReaderHeld() const DTX_ASSERT_SHARED_CAPABILITY(this) {
#if DTX_LOCK_RANK
    rank_check::assert_held(this, rank_);
#endif
  }

 private:
  void set_rank([[maybe_unused]] LockRank rank,
                [[maybe_unused]] bool multi) noexcept {
#if DTX_LOCK_RANK
    rank_ = rank;
    multi_ = multi;
#endif
  }
  void note_acquire() {
#if DTX_LOCK_RANK
    rank_check::note_acquire(this, rank_, multi_);
#endif
  }
  void note_release() noexcept {
#if DTX_LOCK_RANK
    rank_check::note_release(this);
#endif
  }

  std::shared_mutex raw_;
#if DTX_LOCK_RANK
  LockRank rank_;
  bool multi_ = false;
#endif
};

/// Scoped exclusive hold of a Mutex for the full scope (the lock_guard
/// idiom, visible to the static analysis).
class DTX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DTX_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() DTX_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive hold that can be dropped and retaken inside the scope
/// (the std::unique_lock idiom: CondVar waits, unlock-around-blocking-call).
/// Must be locked again before destruction or explicitly left unlocked via
/// a final unlock() — the destructor releases only when held.
class DTX_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) DTX_ACQUIRE(mutex)
      : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  ~UniqueLock() DTX_RELEASE() {
    if (held_) mutex_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() DTX_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() DTX_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }
  [[nodiscard]] bool owns_lock() const noexcept { return held_; }
  [[nodiscard]] Mutex& mutex() noexcept { return mutex_; }

 private:
  Mutex& mutex_;
  bool held_;
};

/// Movable exclusive hold, for the places where guards travel through a
/// container (LockTable::lock_shards returns one per involved shard). The
/// static analysis cannot track capabilities through moves or vectors, so
/// this type is deliberately invisible to it; call sites re-establish the
/// fact with Mutex::AssertHeld(), which the rank checker verifies at
/// runtime.
class MovableMutexLock {
 public:
  explicit MovableMutexLock(Mutex& mutex) DTX_NO_THREAD_SAFETY_ANALYSIS
      : mutex_(&mutex) {
    mutex_->lock();
  }
  MovableMutexLock(MovableMutexLock&& other) noexcept
      : mutex_(other.mutex_) {
    other.mutex_ = nullptr;
  }
  MovableMutexLock(const MovableMutexLock&) = delete;
  MovableMutexLock& operator=(const MovableMutexLock&) = delete;
  MovableMutexLock& operator=(MovableMutexLock&&) = delete;
  ~MovableMutexLock() DTX_NO_THREAD_SAFETY_ANALYSIS {
    if (mutex_ != nullptr) mutex_->unlock();
  }

 private:
  Mutex* mutex_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class DTX_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) DTX_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedLock() DTX_RELEASE_SHARED() { mutex_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped exclusive (writer) hold of a SharedMutex.
class DTX_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mutex) DTX_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~ExclusiveLock() DTX_RELEASE() { mutex_.unlock(); }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Movable exclusive hold of a SharedMutex, for guards returned across a
/// function boundary (LockManager::exclusive_data_latch). Invisible to the
/// static analysis for the same reason as MovableMutexLock.
class MovableExclusiveLock {
 public:
  explicit MovableExclusiveLock(SharedMutex& mutex)
      DTX_NO_THREAD_SAFETY_ANALYSIS : mutex_(&mutex) {
    mutex_->lock();
  }
  MovableExclusiveLock(MovableExclusiveLock&& other) noexcept
      : mutex_(other.mutex_) {
    other.mutex_ = nullptr;
  }
  MovableExclusiveLock(const MovableExclusiveLock&) = delete;
  MovableExclusiveLock& operator=(const MovableExclusiveLock&) = delete;
  MovableExclusiveLock& operator=(MovableExclusiveLock&&) = delete;
  ~MovableExclusiveLock() DTX_NO_THREAD_SAFETY_ANALYSIS {
    if (mutex_ != nullptr) mutex_->unlock();
  }

 private:
  SharedMutex* mutex_;
};

/// Shared-or-exclusive hold of a SharedMutex picked at runtime
/// (LockManager::process_operation latches shared for queries, exclusive
/// for updates, around one code path). A conditional hold cannot be
/// expressed to the static analysis, so this guard is invisible to it; the
/// rank checker still sees both modes.
class ConditionalLatch {
 public:
  enum class Mode { kShared, kExclusive };

  ConditionalLatch(SharedMutex& mutex, Mode mode)
      DTX_NO_THREAD_SAFETY_ANALYSIS : mutex_(mutex), mode_(mode) {
    if (mode_ == Mode::kExclusive) {
      mutex_.lock();
    } else {
      mutex_.lock_shared();
    }
  }
  ConditionalLatch(const ConditionalLatch&) = delete;
  ConditionalLatch& operator=(const ConditionalLatch&) = delete;
  ~ConditionalLatch() DTX_NO_THREAD_SAFETY_ANALYSIS {
    if (mode_ == Mode::kExclusive) {
      mutex_.unlock();
    } else {
      mutex_.unlock_shared();
    }
  }

 private:
  SharedMutex& mutex_;
  const Mode mode_;
};

/// Condition variable whose waits name the Mutex directly, the one shape
/// the static analysis can follow (std::condition_variable over a bare
/// std::unique_lock is invisible to it). Waits keep the rank checker's
/// bookkeeping honest across the block: the hold is dropped while blocked
/// and re-recorded on wakeup.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mutex) DTX_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.raw_, std::adopt_lock);
    mutex.note_release();
    cv_.wait(native);
    mutex.note_acquire();
    native.release();
  }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) DTX_REQUIRES(mutex) {
    while (!predicate()) wait(mutex);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mutex,
                            const std::chrono::time_point<Clock, Duration>&
                                deadline) DTX_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.raw_, std::adopt_lock);
    mutex.note_release();
    const std::cv_status status = cv_.wait_until(native, deadline);
    mutex.note_acquire();
    native.release();
    return status;
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mutex,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate predicate) DTX_REQUIRES(mutex) {
    while (!predicate()) {
      if (wait_until(mutex, deadline) == std::cv_status::timeout) {
        return predicate();
      }
    }
    return true;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& timeout)
      DTX_REQUIRES(mutex) {
    return wait_until(mutex, std::chrono::steady_clock::now() + timeout);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mutex,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate predicate) DTX_REQUIRES(mutex) {
    return wait_until(mutex, std::chrono::steady_clock::now() + timeout,
                      std::move(predicate));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dtx::sync
