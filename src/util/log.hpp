// Minimal thread-safe leveled logger. Disabled (kWarn) by default so tests
// and benchmarks stay quiet; examples turn it up to narrate protocol steps.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace dtx::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line (adds timestamp + level prefix). Thread-safe.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace dtx::util

#define DTX_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::dtx::util::log_level())) { \
  } else                                                   \
    ::dtx::util::detail::LogStream(level)

#define DTX_TRACE() DTX_LOG(::dtx::util::LogLevel::kTrace)
#define DTX_DEBUG() DTX_LOG(::dtx::util::LogLevel::kDebug)
#define DTX_INFO() DTX_LOG(::dtx::util::LogLevel::kInfo)
#define DTX_WARN() DTX_LOG(::dtx::util::LogLevel::kWarn)
#define DTX_ERROR() DTX_LOG(::dtx::util::LogLevel::kError)
