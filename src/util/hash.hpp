// Shared deterministic hashing. FNV-1a 64 is the repo's one checksum
// primitive: WAL record framing, checkpoint snapshot identity
// (dtx/wal.hpp) and wire-frame checksums (net/codec.hpp) all use it, so a
// constant can never drift between the durability and transport layers.
#pragma once

#include <cstdint>
#include <string_view>

namespace dtx::util {

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace dtx::util
