#include "util/flags.hpp"

#include <cstdlib>
#include <string_view>

namespace dtx::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace dtx::util
