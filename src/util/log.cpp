#include "util/log.hpp"

#include <chrono>
#include <cstdio>

#include "util/sync.hpp"

namespace dtx::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Absolute leaf of the lock lattice: DTX_LOG may fire under any engine lock.
sync::Mutex g_mutex{sync::LockRank::kLog};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  sync::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%10lld.%06lld %s] %s\n",
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000), level_tag(level),
               message.c_str());
}

}  // namespace dtx::util
