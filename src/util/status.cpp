#include "util/status.hpp"

namespace dtx::util {

const char* code_name(Code code) noexcept {
  switch (code) {
    case Code::kOk: return "ok";
    case Code::kInvalidArgument: return "invalid-argument";
    case Code::kNotFound: return "not-found";
    case Code::kAlreadyExists: return "already-exists";
    case Code::kConflict: return "conflict";
    case Code::kDeadlock: return "deadlock";
    case Code::kAborted: return "aborted";
    case Code::kFailed: return "failed";
    case Code::kUnavailable: return "unavailable";
    case Code::kTimeout: return "timeout";
    case Code::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dtx::util
