#include "util/rng.hpp"

#include <cassert>

namespace dtx::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

std::size_t Rng::next_index(std::size_t size) noexcept {
  assert(size > 0);
  return static_cast<std::size_t>(next_below(size));
}

std::string Rng::next_word(std::size_t min_len, std::size_t max_len) {
  assert(min_len >= 1 && min_len <= max_len);
  const auto len = static_cast<std::size_t>(
      next_between(static_cast<std::int64_t>(min_len),
                   static_cast<std::int64_t>(max_len)));
  std::string word(len, 'a');
  for (auto& c : word) c = static_cast<char>('a' + next_below(26));
  return word;
}

}  // namespace dtx::util
