// Monotonic stopwatch used for response-time measurement.
#pragma once

#include <chrono>

namespace dtx::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}

  void restart() noexcept { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

  [[nodiscard]] std::chrono::steady_clock::time_point start() const noexcept {
    return start_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dtx::util
