#include "util/sync.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dtx::sync {

const char* lock_rank_name(LockRank rank) noexcept {
  switch (rank) {
    case LockRank::kClusterMembership: return "cluster-membership";
    case LockRank::kSiteCoordinator: return "site-coordinator";
    case LockRank::kSiteResponses: return "site-responses";
    case LockRank::kSiteAcks: return "site-acks";
    case LockRank::kDataLatch: return "data-latch";
    case LockRank::kSiteParticipant: return "site-participant";
    case LockRank::kSiteStats: return "site-stats";
    case LockRank::kLockTableShard: return "lock-table-shard";
    case LockRank::kWaitForGraph: return "wait-for-graph";
    case LockRank::kLockRecords: return "lock-records";
    case LockRank::kCheckpoint: return "checkpoint";
    case LockRank::kPlanCacheShard: return "plan-cache-shard";
    case LockRank::kSnapshotStore: return "snapshot-store";
    case LockRank::kSnapshotDoc: return "snapshot-doc";
    case LockRank::kTxnLatch: return "txn-latch";
    case LockRank::kCatalog: return "catalog";
    case LockRank::kNetwork: return "network";
    case LockRank::kMailbox: return "mailbox";
    case LockRank::kStorage: return "storage";
    case LockRank::kLog: return "log";
  }
  return "?";
}

#if DTX_LOCK_RANK

namespace rank_check {
namespace {

struct Hold {
  const void* mutex;
  LockRank rank;
};

/// Per-thread held set. A plain vector: hold counts are single digits
/// (the deepest engine chain is ~5), and releases are not LIFO —
/// LockTable::lock_shards drops its guards in vector-destruction order.
thread_local std::vector<Hold> g_held;

[[noreturn]] void violation(const char* what, const void* mutex,
                            LockRank rank) {
  std::fprintf(stderr,
               "dtx: lock rank violation: %s %s (rank %d, mutex %p); held:",
               what, lock_rank_name(rank), static_cast<int>(rank), mutex);
  for (const Hold& hold : g_held) {
    std::fprintf(stderr, " %s(%d)", lock_rank_name(hold.rank),
                 static_cast<int>(hold.rank));
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* mutex, LockRank rank, bool multi) {
  LockRank max_rank = LockRank{0};
  for (const Hold& hold : g_held) {
    if (hold.mutex == mutex) violation("recursive acquisition of", mutex, rank);
    if (hold.rank > max_rank) max_rank = hold.rank;
  }
  if (rank < max_rank || (rank == max_rank && !multi)) {
    violation("acquiring", mutex, rank);
  }
  g_held.push_back(Hold{mutex, rank});
}

void note_release(const void* mutex) noexcept {
  for (auto it = g_held.rbegin(); it != g_held.rend(); ++it) {
    if (it->mutex == mutex) {
      g_held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock that was never recorded: acquired before the checker
  // was in play (impossible — the wrappers record every acquire) — abort
  // loudly rather than let the held set drift.
  std::fprintf(stderr, "dtx: lock rank violation: releasing unheld mutex %p\n",
               mutex);
  std::fflush(stderr);
  std::abort();
}

bool is_held(const void* mutex) noexcept {
  for (const Hold& hold : g_held) {
    if (hold.mutex == mutex) return true;
  }
  return false;
}

void assert_held(const void* mutex, LockRank rank) {
  if (!is_held(mutex)) violation("AssertHeld without holding", mutex, rank);
}

}  // namespace rank_check

#endif  // DTX_LOCK_RANK

}  // namespace dtx::sync
