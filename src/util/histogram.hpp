// Latency / value histogram used by the benchmark harness to report the
// response-time distributions the paper plots (mean, percentiles).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtx::util {

class Histogram {
 public:
  Histogram() = default;

  void add(double value);
  void merge(const Histogram& other);
  void clear();

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// q in [0,1]; nearest-rank percentile. Requires non-empty.
  [[nodiscard]] double percentile(double q) const;

  /// "n=250 mean=12.3ms p50=... p95=... max=..." with a unit suffix.
  [[nodiscard]] std::string summary(const std::string& unit) const;

 private:
  void sort_if_needed() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace dtx::util
