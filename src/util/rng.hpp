// Deterministic pseudo-random generator (splitmix64 seeded xoshiro256**).
// Every stochastic component in DTX (workload generation, fragmentation,
// client think times) takes an explicit Rng so experiments are reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtx::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Derive an independent child generator (stable given call order).
  Rng split() noexcept;

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t next_index(std::size_t size) noexcept;

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string next_word(std::size_t min_len, std::size_t max_len);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = next_index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace dtx::util
