#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dtx::util {

void Histogram::add(double value) {
  values_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

void Histogram::merge(const Histogram& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void Histogram::clear() {
  values_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

double Histogram::mean() const noexcept {
  return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

void Histogram::sort_if_needed() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  assert(!values_.empty());
  sort_if_needed();
  return values_.front();
}

double Histogram::max() const {
  assert(!values_.empty());
  sort_if_needed();
  return values_.back();
}

double Histogram::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Histogram::percentile(double q) const {
  assert(!values_.empty());
  sort_if_needed();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return values_[std::min(index, values_.size() - 1)];
}

std::string Histogram::summary(const std::string& unit) const {
  if (values_.empty()) return "n=0";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "n=%zu mean=%.3f%s p50=%.3f%s p95=%.3f%s max=%.3f%s",
                count(), mean(), unit.c_str(), percentile(0.50), unit.c_str(),
                percentile(0.95), unit.c_str(), max(), unit.c_str());
  return buffer;
}

}  // namespace dtx::util
