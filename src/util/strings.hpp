// Small string helpers shared by the XML parser, XPath lexer and flag parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dtx::util {

/// Split on a single character; keeps empty pieces.
std::vector<std::string> split(std::string_view text, char separator);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Escape the five predefined XML entities in text content.
std::string xml_escape(std::string_view text);

/// Reverse of xml_escape; unknown entities pass through verbatim.
std::string xml_unescape(std::string_view text);

/// Render a double with fixed precision (bench table output).
std::string format_double(double value, int precision);

}  // namespace dtx::util
