// File-system storage backend: one "<name>.xml" file per document inside a
// directory (the paper's Fig. 2 shows a DTX instance backed by a plain file
// system next to DBMS-backed instances).
#pragma once

#include <filesystem>

#include "storage/storage.hpp"
#include "util/sync.hpp"

namespace dtx::storage {

class FileStore final : public StorageBackend {
 public:
  /// Creates the directory when missing.
  explicit FileStore(std::filesystem::path directory);

  [[nodiscard]] const char* kind() const noexcept override { return "file"; }

  util::Result<std::string> load(const std::string& name) override;
  util::Status store(const std::string& name, const std::string& xml) override;
  util::Status append(const std::string& name,
                      const std::string& data) override;
  util::Result<std::string> read_log(const std::string& name) override;
  util::Status truncate(const std::string& name) override;
  bool exists(const std::string& name) override;
  std::vector<std::string> list() override;
  util::Status remove(const std::string& name) override;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  [[nodiscard]] std::filesystem::path path_of(const std::string& name) const;

  // Serializes every filesystem operation. The annotation sweep surfaced
  // that FileStore, unlike MemoryStore, had no internal synchronization at
  // all, yet is called concurrently (WAL appends under the data latch,
  // commit-log appends under the coordinator mutex, recovery reads from
  // the dispatcher thread): two store() calls for one document raced on
  // the shared "<name>.xml.tmp" staging file, so the rename could publish
  // a torn snapshot. The interface contract ("appends are atomic per call
  // at the backend's synchronization granularity") also requires ofstream
  // appends not to interleave. storage_test covers the regression.
  mutable sync::Mutex mutex_{sync::LockRank::kStorage};
  const std::filesystem::path directory_;
};

}  // namespace dtx::storage
