// In-memory storage backend (the default for tests and benches: the paper's
// Sedna instances only matter as load/persist endpoints).
#pragma once

#include <map>

#include "storage/storage.hpp"
#include "util/sync.hpp"

namespace dtx::storage {

class MemoryStore final : public StorageBackend {
 public:
  [[nodiscard]] const char* kind() const noexcept override { return "memory"; }

  util::Result<std::string> load(const std::string& name) override;
  util::Status store(const std::string& name, const std::string& xml) override;
  util::Status append(const std::string& name,
                      const std::string& data) override;
  util::Result<std::string> read_log(const std::string& name) override;
  util::Status truncate(const std::string& name) override;
  bool exists(const std::string& name) override;
  std::vector<std::string> list() override;
  util::Status remove(const std::string& name) override;

  /// Number of persist (store) calls — observable write-through behaviour.
  [[nodiscard]] std::uint64_t store_count() const;

 private:
  mutable sync::Mutex mutex_{sync::LockRank::kStorage};
  std::map<std::string, std::string> documents_ DTX_GUARDED_BY(mutex_);
  std::uint64_t store_count_ DTX_GUARDED_BY(mutex_) = 0;
};

}  // namespace dtx::storage
