#include "storage/file_store.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dtx::storage {

namespace fs = std::filesystem;

FileStore::FileStore(fs::path directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
}

fs::path FileStore::path_of(const std::string& name) const {
  return directory_ / (name + ".xml");
}

util::Result<std::string> FileStore::load(const std::string& name) {
  sync::MutexLock lock(mutex_);
  std::ifstream in(path_of(name), std::ios::binary);
  if (!in) {
    return util::Status(util::Code::kNotFound,
                        "document '" + name + "' not in " + directory_.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

util::Status FileStore::store(const std::string& name, const std::string& xml) {
  // Write-then-rename for atomicity against crashes; the mutex keeps two
  // writers of one document from clobbering each other's .tmp staging file.
  sync::MutexLock lock(mutex_);
  const fs::path final_path = path_of(name);
  const fs::path temp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status(util::Code::kUnavailable,
                          "cannot write " + temp_path.string());
    }
    out << xml;
    if (!out) {
      return util::Status(util::Code::kUnavailable,
                          "short write to " + temp_path.string());
    }
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    return util::Status(util::Code::kUnavailable,
                        "rename failed: " + ec.message());
  }
  return util::Status::ok();
}

util::Status FileStore::append(const std::string& name,
                               const std::string& data) {
  sync::MutexLock lock(mutex_);
  std::ofstream out(path_of(name), std::ios::binary | std::ios::app);
  if (!out) {
    return util::Status(util::Code::kUnavailable,
                        "cannot append to " + path_of(name).string());
  }
  out << data;
  if (!out) {
    return util::Status(util::Code::kUnavailable,
                        "short append to " + path_of(name).string());
  }
  return util::Status::ok();
}

util::Result<std::string> FileStore::read_log(const std::string& name) {
  sync::MutexLock lock(mutex_);
  std::ifstream in(path_of(name), std::ios::binary);
  if (!in) {
    // Only true absence reads as an empty log; any other open failure
    // (permissions, fd exhaustion, I/O error) must surface — treating it
    // as empty would silently drop the log tail from recovery.
    std::error_code ec;
    if (!fs::exists(path_of(name), ec) && !ec) return std::string();
    return util::Status(util::Code::kUnavailable,
                        "cannot read log " + path_of(name).string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

util::Status FileStore::truncate(const std::string& name) {
  sync::MutexLock lock(mutex_);
  std::ofstream out(path_of(name), std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status(util::Code::kUnavailable,
                        "cannot truncate " + path_of(name).string());
  }
  return util::Status::ok();
}

bool FileStore::exists(const std::string& name) {
  sync::MutexLock lock(mutex_);
  std::error_code ec;
  return fs::exists(path_of(name), ec);
}

std::vector<std::string> FileStore::list() {
  sync::MutexLock lock(mutex_);
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".xml") {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

util::Status FileStore::remove(const std::string& name) {
  sync::MutexLock lock(mutex_);
  std::error_code ec;
  if (!fs::remove(path_of(name), ec) || ec) {
    return util::Status(util::Code::kNotFound,
                        "document '" + name + "' not in " + directory_.string());
  }
  return util::Status::ok();
}

}  // namespace dtx::storage
