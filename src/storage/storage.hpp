// Storage backends. The paper attaches each DTX instance to an opaque XML
// store ("the storage structures of these documents are independent... DTX
// supports communication with any XML document storage method" — Sedna in
// the paper's experiments, a DBMS or a plain file system in its Fig. 2
// example). DTX only loads documents at startup and persists committed
// state, so the interface is a named blob store of serialized XML.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace dtx::storage {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual const char* kind() const noexcept = 0;

  /// Serialized XML of the named document.
  virtual util::Result<std::string> load(const std::string& name) = 0;

  /// Writes (creates or replaces) the named document.
  virtual util::Status store(const std::string& name,
                             const std::string& xml) = 0;

  /// Appends to the named entry, creating it when absent — O(appended
  /// bytes), unlike load+store. Used for log-structured entries (the
  /// presumed-abort commit log), not for documents.
  virtual util::Status append(const std::string& name,
                              const std::string& data) = 0;

  virtual bool exists(const std::string& name) = 0;

  /// Names of all stored documents, sorted.
  virtual std::vector<std::string> list() = 0;

  virtual util::Status remove(const std::string& name) = 0;
};

}  // namespace dtx::storage
