// Storage backends. The paper attaches each DTX instance to an opaque XML
// store ("the storage structures of these documents are independent... DTX
// supports communication with any XML document storage method" — Sedna in
// the paper's experiments, a DBMS or a plain file system in its Fig. 2
// example). DTX only loads documents at startup and persists committed
// state, so the interface is a named blob store of serialized XML.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace dtx::storage {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual const char* kind() const noexcept = 0;

  /// Serialized XML of the named document.
  virtual util::Result<std::string> load(const std::string& name) = 0;

  /// Writes (creates or replaces) the named document.
  virtual util::Status store(const std::string& name,
                             const std::string& xml) = 0;

  /// Appends to the named entry, creating it when absent — O(appended
  /// bytes), unlike load+store. This is the write path of log-structured
  /// entries: the per-document redo logs and the presumed-abort commit
  /// log. Appends are atomic per call at the backend's synchronization
  /// granularity; a *process* crash may still leave a torn tail, which
  /// the log framing detects (wal::scan_log).
  virtual util::Status append(const std::string& name,
                              const std::string& data) = 0;

  /// Reads a log-structured entry in full. Unlike load(), a missing entry
  /// is not an error — it reads as empty (a log that was never written).
  virtual util::Result<std::string> read_log(const std::string& name) = 0;

  /// Resets a log-structured entry to empty (log compaction dropped every
  /// record). Creates the entry when absent; never an error.
  virtual util::Status truncate(const std::string& name) = 0;

  virtual bool exists(const std::string& name) = 0;

  /// Names of all stored documents, sorted.
  virtual std::vector<std::string> list() = 0;

  virtual util::Status remove(const std::string& name) = 0;
};

}  // namespace dtx::storage
