#include "storage/memory_store.hpp"

namespace dtx::storage {

util::Result<std::string> MemoryStore::load(const std::string& name) {
  sync::MutexLock lock(mutex_);
  const auto it = documents_.find(name);
  if (it == documents_.end()) {
    return util::Status(util::Code::kNotFound,
                        "document '" + name + "' not in memory store");
  }
  return it->second;
}

util::Status MemoryStore::store(const std::string& name,
                                const std::string& xml) {
  sync::MutexLock lock(mutex_);
  documents_[name] = xml;
  ++store_count_;
  return util::Status::ok();
}

util::Status MemoryStore::append(const std::string& name,
                                 const std::string& data) {
  sync::MutexLock lock(mutex_);
  documents_[name] += data;
  ++store_count_;
  return util::Status::ok();
}

util::Result<std::string> MemoryStore::read_log(const std::string& name) {
  sync::MutexLock lock(mutex_);
  const auto it = documents_.find(name);
  return it == documents_.end() ? std::string() : it->second;
}

util::Status MemoryStore::truncate(const std::string& name) {
  sync::MutexLock lock(mutex_);
  documents_[name].clear();
  return util::Status::ok();
}

bool MemoryStore::exists(const std::string& name) {
  sync::MutexLock lock(mutex_);
  return documents_.count(name) != 0;
}

std::vector<std::string> MemoryStore::list() {
  sync::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, xml] : documents_) {
    (void)xml;
    names.push_back(name);
  }
  return names;
}

util::Status MemoryStore::remove(const std::string& name) {
  sync::MutexLock lock(mutex_);
  if (documents_.erase(name) == 0) {
    return util::Status(util::Code::kNotFound,
                        "document '" + name + "' not in memory store");
  }
  return util::Status::ok();
}

std::uint64_t MemoryStore::store_count() const {
  sync::MutexLock lock(mutex_);
  return store_count_;
}

}  // namespace dtx::storage
